package ps

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mamdr/internal/autograd"
	"mamdr/internal/framework"
	"mamdr/internal/telemetry"
)

// TestCountersRaceSafe hammers PushDelta, PullDense, and PullRows from
// many goroutines while concurrently snapshotting Counters(); run under
// -race (the Makefile race target and CI do) it proves the counter
// reads never observe torn or unsynchronized state, and afterwards the
// totals must be exact.
func TestCountersRaceSafe(t *testing.T) {
	params := []*autograd.Tensor{autograd.ParamZeros(200, 4), autograd.ParamZeros(4, 4)}
	s := NewServer(params, map[int]int{0: 0}, 2, "sgd", 0.1)
	s.SetMetrics(NewMetrics(telemetry.New()))

	const writers, iters = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Dedicated readers snapshotting counters the whole time.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c := s.Counters()
					if c.FloatsMoved < 0 {
						t.Error("negative floats moved")
						return
					}
				}
			}
		}()
	}
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				s.PushDelta(context.Background(), Delta{
					Dense:     map[int][]float64{1: make([]float64, 16)},
					Rows:      map[int][]int{0: {rng.Intn(200)}},
					RowDeltas: map[int][][]float64{0: {{0.1, 0.1, 0.1, 0.1}}},
				})
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	c := s.Counters()
	if c.DensePushes != writers*iters || c.RowPushes != writers*iters {
		t.Fatalf("lost pushes under concurrency: %+v", c)
	}
	wantFloats := int64(writers * iters * (16 + 4))
	if c.FloatsMoved != wantFloats {
		t.Fatalf("floats moved = %d, want %d", c.FloatsMoved, wantFloats)
	}
}

// TestServerMetricsMirrorCounters checks the telemetry series track the
// legacy Counters struct exactly.
func TestServerMetricsMirrorCounters(t *testing.T) {
	reg := telemetry.New()
	params := []*autograd.Tensor{autograd.ParamZeros(100, 2), autograd.ParamZeros(1, 3)}
	s := NewServer(params, map[int]int{0: 0}, 1, "sgd", 1)
	s.SetMetrics(NewMetrics(reg))

	s.PullDense(context.Background())
	s.PullRows(context.Background(), 0, []int{1, 2, 3})
	s.PushDelta(context.Background(), Delta{
		Dense:     map[int][]float64{1: {0, 0, 0}},
		Rows:      map[int][]int{0: {5, 6}},
		RowDeltas: map[int][][]float64{0: {{1, 1}, {2, 2}}},
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	c := s.Counters()
	for _, want := range []string{
		"mamdr_ps_dense_pulls_total 1",
		"mamdr_ps_row_pulls_total 3",
		"mamdr_ps_dense_pushes_total 1",
		"mamdr_ps_row_pushes_total 2",
		`mamdr_ps_row_sync_floats_total{tensor="0"} 10`, // 3 pulled + 2 pushed rows x 2 cols
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if want := "mamdr_ps_floats_moved_total 16"; !strings.Contains(out, want) || c.FloatsMoved != 16 {
		t.Errorf("floats mismatch: counters=%d, exposition:\n%s", c.FloatsMoved, out)
	}
}

// TestDistributedTrainingRecordsCacheAndStaleness runs the PS-Worker
// trainer fully instrumented and checks the worker-side series: cache
// hits and misses both occur, the hit ratio lands in (0, 1), staleness
// observations exist, and the shared training telemetry (per-domain
// loss, conflict histogram) is populated too.
func TestDistributedTrainingRecordsCacheAndStaleness(t *testing.T) {
	ds := testDataset(t)
	reg := telemetry.New()
	m := NewMetrics(reg)
	tm := framework.NewTrainMetrics(reg, ds, nil)

	res := Train(replicaFactory(ds), ds, Options{
		Workers: 2, Epochs: 3, Seed: 9, CacheEnabled: true, UseDR: true,
		Metrics: m, Telemetry: tm,
	})
	if res.State == nil {
		t.Fatal("training failed")
	}

	hits, misses := m.cacheHits.Value(), m.cacheMisses.Value()
	if hits == 0 || misses == 0 {
		t.Fatalf("cache series empty: hits=%d misses=%d", hits, misses)
	}
	ratio := m.hitRatio.Value()
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("hit ratio = %g, want in (0,1)", ratio)
	}
	if want := float64(hits) / float64(hits+misses); ratio != want {
		t.Fatalf("hit ratio gauge = %g, want %g", ratio, want)
	}
	if m.staleness.Count() == 0 {
		t.Fatal("no staleness observations")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mamdr_ps_cache_hit_ratio ",
		"mamdr_ps_row_staleness_batches_bucket",
		`mamdr_train_domain_loss{domain="a"}`,
		"mamdr_train_grad_cosine_count",
		`mamdr_train_dr_loss{domain="b"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestNaiveProtocolHasLowHitRatio pins the cache experiment's telemetry
// story: with the cache disabled every batch re-pulls, so the hit ratio
// must be far below the cached run's.
func TestNaiveProtocolHasLowHitRatio(t *testing.T) {
	ds := testDataset(t)
	run := func(cache bool) float64 {
		m := NewMetrics(telemetry.New())
		Train(replicaFactory(ds), ds, Options{
			Workers: 2, Epochs: 2, Seed: 9, CacheEnabled: cache, Metrics: m,
		})
		return m.hitRatio.Value()
	}
	cached, naive := run(true), run(false)
	t.Logf("hit ratio: cached=%.3f naive=%.3f", cached, naive)
	if cached <= naive {
		t.Fatalf("cache hit ratio %.3f not above naive %.3f", cached, naive)
	}
}
