// Package ps implements the paper's large-scale PS-Worker architecture
// (Section IV-E): sharded parameter servers storing the model, workers
// computing MAMDR's inner loops locally, and the embedding PS-Worker
// cache (static-cache + dynamic-cache) that reduces synchronization
// overhead and staleness for large sparse embedding tables.
//
// The in-process Server and the net/rpc transport expose the same Store
// interface, so the worker code is identical whether the parameter
// server lives in the same process (tests, benchmarks) or across a real
// socket (examples/distributed).
package ps

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mamdr/internal/autograd"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
)

// Layout describes the parameter tensors managed by a server: their
// shapes and which of them are treated as sparse embedding tables
// (synchronized row-wise) versus dense tensors (synchronized whole).
type Layout struct {
	Rows, Cols []int
	Embedding  []bool
}

// LayoutOf derives a layout from model parameters: any tensor with at
// least embRowThreshold rows is synchronized row-wise as an embedding
// table.
func LayoutOf(params []*autograd.Tensor, embRowThreshold int) Layout {
	l := Layout{
		Rows:      make([]int, len(params)),
		Cols:      make([]int, len(params)),
		Embedding: make([]bool, len(params)),
	}
	for i, p := range params {
		l.Rows[i] = p.Rows
		l.Cols[i] = p.Cols
		l.Embedding[i] = p.Rows >= embRowThreshold
	}
	return l
}

// NumTensors returns the number of managed tensors.
func (l Layout) NumTensors() int { return len(l.Rows) }

// Counters tallies parameter-server traffic; FloatsMoved is the
// synchronization-overhead metric reported by the cache experiments.
type Counters struct {
	DensePulls  int64
	DensePushes int64
	RowPulls    int64
	RowPushes   int64
	FloatsMoved int64
}

// Store is the worker-side view of a parameter server.
type Store interface {
	// Layout returns the managed tensor layout.
	Layout() Layout
	// PullDense returns the current values of all dense (non-embedding)
	// tensors, keyed by tensor index.
	PullDense() map[int][]float64
	// PullRows returns the latest values of the requested embedding rows.
	PullRows(tensor int, rows []int) [][]float64
	// PushDelta applies an outer update (Eq. 3): for dense tensors the
	// full delta Θ̃−Θ, for embeddings only the touched rows' deltas. The
	// server feeds -(delta) to its outer optimizer.
	PushDelta(d Delta)
	// Counters returns a snapshot of the traffic counters.
	Counters() Counters
}

// Delta is one worker's outer-loop contribution.
type Delta struct {
	// Dense maps tensor index to a full-tensor delta.
	Dense map[int][]float64
	// Rows and RowDeltas map tensor index to the touched embedding rows
	// and their per-row deltas.
	Rows      map[int][]int
	RowDeltas map[int][][]float64
}

// Server is the in-process parameter server. Tensors are partitioned
// into shards, each guarded by its own mutex, so pushes from different
// workers proceed concurrently exactly as in a multi-machine PS
// deployment (the paper uses 40 parameter servers).
type Server struct {
	layout Layout
	shards []*shard
	// shardOf[t] locates tensor t's shard.
	shardOf []int

	counters struct {
		densePulls, densePushes, rowPulls, rowPushes, floats int64
	}
}

type shard struct {
	mu sync.Mutex
	// data holds each tensor as a persistent autograd parameter so the
	// outer optimizer's per-tensor state (Adagrad accumulators, Adam
	// moments) survives across pushes.
	data map[int]*autograd.Tensor
	opt  optim.Optimizer
	lr   float64 // outer learning rate β
}

// NewServer builds a server over the given initial parameters, sharded
// numShards ways. outerOpt ("sgd", "adagrad", "adam") with learning rate
// beta performs the outer update of Eq. 3.
func NewServer(params []*autograd.Tensor, embRowThreshold, numShards int, outerOpt string, beta float64) *Server {
	if numShards < 1 {
		numShards = 1
	}
	s := &Server{
		layout:  LayoutOf(params, embRowThreshold),
		shardOf: make([]int, len(params)),
	}
	for i := 0; i < numShards; i++ {
		s.shards = append(s.shards, &shard{
			data: map[int]*autograd.Tensor{},
			opt:  optim.New(outerOpt, beta),
			lr:   beta,
		})
	}
	for i, p := range params {
		sh := i % numShards
		s.shardOf[i] = sh
		s.shards[sh].data[i] = autograd.Param(p.Rows, p.Cols, append([]float64(nil), p.Data...))
	}
	return s
}

// Layout implements Store.
func (s *Server) Layout() Layout { return s.layout }

// PullDense implements Store.
func (s *Server) PullDense() map[int][]float64 {
	out := map[int][]float64{}
	for t := 0; t < s.layout.NumTensors(); t++ {
		if s.layout.Embedding[t] {
			continue
		}
		sh := s.shards[s.shardOf[t]]
		sh.mu.Lock()
		out[t] = append([]float64(nil), sh.data[t].Data...)
		sh.mu.Unlock()
		atomic.AddInt64(&s.counters.floats, int64(len(out[t])))
	}
	atomic.AddInt64(&s.counters.densePulls, 1)
	return out
}

// PullRows implements Store.
func (s *Server) PullRows(tensor int, rows []int) [][]float64 {
	if !s.layout.Embedding[tensor] {
		panic(fmt.Sprintf("ps: PullRows on dense tensor %d", tensor))
	}
	cols := s.layout.Cols[tensor]
	sh := s.shards[s.shardOf[tensor]]
	out := make([][]float64, len(rows))
	sh.mu.Lock()
	table := sh.data[tensor].Data
	for i, r := range rows {
		out[i] = append([]float64(nil), table[r*cols:(r+1)*cols]...)
	}
	sh.mu.Unlock()
	atomic.AddInt64(&s.counters.rowPulls, int64(len(rows)))
	atomic.AddInt64(&s.counters.floats, int64(len(rows)*cols))
	return out
}

// PushDelta implements Store. Dense tensors go through the shard's outer
// optimizer (gradient = -delta); embedding rows are updated with plain
// SGD at the outer learning rate, the standard choice for sparse slots.
func (s *Server) PushDelta(d Delta) {
	for t, delta := range d.Dense {
		sh := s.shards[s.shardOf[t]]
		sh.mu.Lock()
		tensor := sh.data[t]
		for i, v := range delta {
			tensor.Grad[i] = -v
		}
		sh.opt.Step([]*autograd.Tensor{tensor})
		sh.mu.Unlock()
		atomic.AddInt64(&s.counters.floats, int64(len(delta)))
	}
	for t, rows := range d.Rows {
		cols := s.layout.Cols[t]
		sh := s.shards[s.shardOf[t]]
		sh.mu.Lock()
		table := sh.data[t].Data
		for i, r := range rows {
			dst := table[r*cols : (r+1)*cols]
			for j, v := range d.RowDeltas[t][i] {
				dst[j] += sh.lr * v
			}
		}
		sh.mu.Unlock()
		atomic.AddInt64(&s.counters.rowPushes, int64(len(rows)))
		atomic.AddInt64(&s.counters.floats, int64(len(rows)*cols))
	}
	atomic.AddInt64(&s.counters.densePushes, 1)
}

// Counters implements Store.
func (s *Server) Counters() Counters {
	return Counters{
		DensePulls:  atomic.LoadInt64(&s.counters.densePulls),
		DensePushes: atomic.LoadInt64(&s.counters.densePushes),
		RowPulls:    atomic.LoadInt64(&s.counters.rowPulls),
		RowPushes:   atomic.LoadInt64(&s.counters.rowPushes),
		FloatsMoved: atomic.LoadInt64(&s.counters.floats),
	}
}

// Snapshot returns the server's current full parameter state aligned
// with the original parameter list (used to evaluate the trained model).
func (s *Server) Snapshot() paramvec.Vector {
	out := make(paramvec.Vector, s.layout.NumTensors())
	for t := 0; t < s.layout.NumTensors(); t++ {
		sh := s.shards[s.shardOf[t]]
		sh.mu.Lock()
		out[t] = append([]float64(nil), sh.data[t].Data...)
		sh.mu.Unlock()
	}
	return out
}
