// Package ps implements the paper's large-scale PS-Worker architecture
// (Section IV-E): sharded parameter servers storing the model, workers
// computing MAMDR's inner loops locally, and the embedding PS-Worker
// cache (static-cache + dynamic-cache) that reduces synchronization
// overhead and staleness for large sparse embedding tables.
//
// The in-process Server and the net/rpc transport expose the same Store
// interface, so the worker code is identical whether the parameter
// server lives in the same process (tests, benchmarks) or across a real
// socket (examples/distributed).
package ps

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mamdr/internal/autograd"
	"mamdr/internal/optim"
	"mamdr/internal/paramvec"
	"mamdr/internal/trace"
)

// Layout describes the parameter tensors managed by a server: their
// shapes, which of them are treated as sparse embedding tables
// (synchronized row-wise) versus dense tensors (synchronized whole),
// and for each embedding table the schema field whose ids index its
// rows.
type Layout struct {
	Rows, Cols []int
	Embedding  []bool
	// Field[t] is the schema field served by embedding tensor t, or -1
	// for dense tensors. Workers use it to find the batch ids that touch
	// the table's rows, so the association is explicit rather than
	// positional.
	Field []int
}

// LayoutOf derives a layout from model parameters and an explicit
// embedding classification: tables maps parameter indices to the schema
// field whose ids index their rows (models.EmbeddingTablesOf supplies
// it). Every tensor not named in tables is synchronized densely.
//
// Earlier revisions classified any tensor with >= N rows as an
// embedding table, which silently excluded wide dense matrices (a first
// MLP layer with numFields x embDim >= N input rows, attention
// projections, ...) from both dense and row synchronization — those
// layers trained on stale per-worker replicas and snapshots returned
// their initial values. The explicit mask makes that impossible, and
// Validate cross-checks it.
func LayoutOf(params []*autograd.Tensor, tables map[int]int) Layout {
	l := Layout{
		Rows:      make([]int, len(params)),
		Cols:      make([]int, len(params)),
		Embedding: make([]bool, len(params)),
		Field:     make([]int, len(params)),
	}
	for i, p := range params {
		l.Rows[i] = p.Rows
		l.Cols[i] = p.Cols
		l.Field[i] = -1
		if f, ok := tables[i]; ok {
			l.Embedding[i] = true
			l.Field[i] = f
		}
	}
	return l
}

// NumTensors returns the number of managed tensors.
func (l Layout) NumTensors() int { return len(l.Rows) }

// Validate cross-checks that every managed tensor is reachable by
// exactly one synchronization path: dense tensors are pulled and pushed
// whole by PullDense/PushDelta, and embedding tensors carry a
// non-negative field so workers can resolve which rows a batch touches.
// numFields bounds the field indices; pass a negative value to skip
// that check (e.g. when the dataset schema is not at hand).
func (l Layout) Validate(numFields int) error {
	n := len(l.Rows)
	if len(l.Cols) != n || len(l.Embedding) != n || len(l.Field) != n {
		return fmt.Errorf("ps: layout slices misaligned: rows=%d cols=%d embedding=%d field=%d",
			n, len(l.Cols), len(l.Embedding), len(l.Field))
	}
	for t := 0; t < n; t++ {
		if l.Rows[t] <= 0 || l.Cols[t] <= 0 {
			return fmt.Errorf("ps: tensor %d has degenerate shape %dx%d", t, l.Rows[t], l.Cols[t])
		}
		if l.Embedding[t] {
			if l.Field[t] < 0 {
				return fmt.Errorf("ps: tensor %d is row-synced but names no field: unreachable by any sync path", t)
			}
			if numFields >= 0 && l.Field[t] >= numFields {
				return fmt.Errorf("ps: tensor %d maps to field %d, schema has %d fields", t, l.Field[t], numFields)
			}
		} else if l.Field[t] >= 0 {
			return fmt.Errorf("ps: dense tensor %d names field %d (would be double-synced)", t, l.Field[t])
		}
	}
	return nil
}

// Counters tallies parameter-server traffic; FloatsMoved is the
// synchronization-overhead metric reported by the cache experiments.
type Counters struct {
	DensePulls  int64
	DensePushes int64
	RowPulls    int64
	RowPushes   int64
	FloatsMoved int64
}

// Store is the worker-side view of a parameter server. Every data
// operation takes a context: the worker's active trace span rides in
// it, so the server-side span of each synchronization call — whether
// the store is in-process or across the net/rpc socket — links to the
// exact inner-loop step that issued it. Callers without tracing pass
// context.Background() and pay nothing.
type Store interface {
	// Layout returns the managed tensor layout.
	Layout() Layout
	// PullDense returns the current values of all dense (non-embedding)
	// tensors, keyed by tensor index.
	PullDense(ctx context.Context) map[int][]float64
	// PullRows returns the latest values of the requested embedding rows.
	PullRows(ctx context.Context, tensor int, rows []int) [][]float64
	// PushDelta applies an outer update (Eq. 3): for dense tensors the
	// full delta Θ̃−Θ, for embeddings only the touched rows' deltas. The
	// server feeds -(delta) to its outer optimizer.
	PushDelta(ctx context.Context, d Delta)
	// Counters returns a snapshot of the traffic counters.
	Counters() Counters
}

// Delta is one worker's outer-loop contribution.
type Delta struct {
	// Dense maps tensor index to a full-tensor delta.
	Dense map[int][]float64
	// Rows and RowDeltas map tensor index to the touched embedding rows
	// and their per-row deltas.
	Rows      map[int][]int
	RowDeltas map[int][][]float64
	// WorkerID and Seq form the idempotency token that makes pushes safe
	// to retry: the server remembers each worker's last applied sequence
	// and discards a delta it has already folded in. Seq is 1-based and
	// strictly increasing per worker; Seq == 0 marks an untagged delta
	// that is always applied (single-shot callers that never retry).
	WorkerID int
	Seq      int64
}

// Server is the in-process parameter server. Tensors are partitioned
// into shards, each guarded by its own mutex, so pushes from different
// workers proceed concurrently exactly as in a multi-machine PS
// deployment (the paper uses 40 parameter servers).
type Server struct {
	layout Layout
	shards []*shard
	// shardOf[t] locates tensor t's shard.
	shardOf []int

	counters struct {
		densePulls, densePushes, rowPulls, rowPushes, floats int64
	}

	// metrics mirrors the counters into telemetry series when attached
	// via SetMetrics; nil means uninstrumented.
	metrics *Metrics
	// tracer emits server-side spans for every synchronization call;
	// the RPC transport uses it to adopt remote TraceContexts. Nil
	// means untraced.
	tracer *trace.Tracer

	// seqMu guards lastSeq, the per-worker last-applied push sequence
	// that makes retried pushes idempotent (duplicates are discarded
	// before touching any shard).
	seqMu   sync.Mutex
	lastSeq map[int]int64

	// ckptPath, when set, is where SaveCheckpoint/LoadCheckpoint persist
	// the server's crash-safe snapshot (see checkpoint.go).
	ckptPath string
}

// SetMetrics attaches a telemetry mirror for the traffic counters.
// Attach before serving traffic; the field is not synchronized against
// in-flight calls.
func (s *Server) SetMetrics(m *Metrics) { s.metrics = m }

// Metrics returns the attached telemetry mirror (nil when
// uninstrumented).
func (s *Server) Metrics() *Metrics { return s.metrics }

// SetTracer attaches a tracer for server-side spans. Attach before
// serving traffic; the field is not synchronized against in-flight
// calls.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer = t }

// Tracer returns the attached tracer (nil when untraced).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

type shard struct {
	mu sync.Mutex
	// data holds each tensor as a persistent autograd parameter so the
	// outer optimizer's per-tensor state (Adagrad accumulators, Adam
	// moments) survives across pushes.
	data map[int]*autograd.Tensor
	opt  optim.Optimizer
	lr   float64 // outer learning rate β
}

// NewServer builds a server over the given initial parameters, sharded
// numShards ways. tables is the explicit embedding classification
// (parameter index -> schema field; models.EmbeddingTablesOf supplies
// it — nil means everything syncs densely). outerOpt ("sgd", "adagrad",
// "adam") with learning rate beta performs the outer update of Eq. 3.
// NewServer panics if the resulting layout fails Validate — a tensor
// unreachable by both sync paths is a silent-desync bug, not a
// recoverable condition.
func NewServer(params []*autograd.Tensor, tables map[int]int, numShards int, outerOpt string, beta float64) *Server {
	if numShards < 1 {
		numShards = 1
	}
	layout := LayoutOf(params, tables)
	if err := layout.Validate(-1); err != nil {
		panic(err)
	}
	s := &Server{
		layout:  layout,
		shardOf: make([]int, len(params)),
		lastSeq: map[int]int64{},
	}
	for i := 0; i < numShards; i++ {
		s.shards = append(s.shards, &shard{
			data: map[int]*autograd.Tensor{},
			opt:  optim.New(outerOpt, beta),
			lr:   beta,
		})
	}
	for i, p := range params {
		sh := i % numShards
		s.shardOf[i] = sh
		s.shards[sh].data[i] = autograd.Param(p.Rows, p.Cols, append([]float64(nil), p.Data...))
	}
	return s
}

// Layout implements Store.
func (s *Server) Layout() Layout { return s.layout }

// PullDense implements Store.
func (s *Server) PullDense(ctx context.Context) map[int][]float64 {
	_, sp := trace.Start(ctx, "ps.pull_dense")
	out := map[int][]float64{}
	var floats int
	for t := 0; t < s.layout.NumTensors(); t++ {
		if s.layout.Embedding[t] {
			continue
		}
		sh := s.shards[s.shardOf[t]]
		sh.mu.Lock()
		out[t] = append([]float64(nil), sh.data[t].Data...)
		sh.mu.Unlock()
		atomic.AddInt64(&s.counters.floats, int64(len(out[t])))
		floats += len(out[t])
	}
	atomic.AddInt64(&s.counters.densePulls, 1)
	s.metrics.observeDensePull(floats)
	sp.EndWith(trace.A("floats", floats))
	return out
}

// PullRows implements Store.
func (s *Server) PullRows(ctx context.Context, tensor int, rows []int) [][]float64 {
	if !s.layout.Embedding[tensor] {
		panic(fmt.Sprintf("ps: PullRows on dense tensor %d", tensor))
	}
	_, sp := trace.Start(ctx, "ps.pull_rows", trace.A("tensor", tensor), trace.A("rows", len(rows)))
	defer sp.End()
	cols := s.layout.Cols[tensor]
	sh := s.shards[s.shardOf[tensor]]
	out := make([][]float64, len(rows))
	sh.mu.Lock()
	table := sh.data[tensor].Data
	for i, r := range rows {
		out[i] = append([]float64(nil), table[r*cols:(r+1)*cols]...)
	}
	sh.mu.Unlock()
	atomic.AddInt64(&s.counters.rowPulls, int64(len(rows)))
	atomic.AddInt64(&s.counters.floats, int64(len(rows)*cols))
	s.metrics.observeRowPull(tensor, len(rows), len(rows)*cols)
	return out
}

// PushDelta implements Store. Dense tensors go through the shard's outer
// optimizer (gradient = -delta); embedding rows are updated with plain
// SGD at the outer learning rate, the standard choice for sparse slots.
// DensePushes counts only pushes that actually carry dense deltas, so
// the synchronization-overhead experiment is not inflated by row-only
// or empty pushes.
func (s *Server) PushDelta(ctx context.Context, d Delta) {
	_, sp := trace.Start(ctx, "ps.push_delta",
		trace.A("dense_tensors", len(d.Dense)), trace.A("row_tensors", len(d.Rows)))
	defer sp.End()
	// Idempotency gate: a tagged delta (Seq > 0) is applied exactly once
	// per worker. The decision and the cursor advance happen atomically
	// under seqMu, so a duplicate delivered concurrently with the
	// original is discarded even before the original finishes applying.
	if d.Seq > 0 {
		s.seqMu.Lock()
		if d.Seq <= s.lastSeq[d.WorkerID] {
			s.seqMu.Unlock()
			sp.SetAttr("duplicate", true)
			s.metrics.observeDuplicatePush()
			return
		}
		s.lastSeq[d.WorkerID] = d.Seq
		s.seqMu.Unlock()
	}
	if len(d.Dense) > 0 {
		atomic.AddInt64(&s.counters.densePushes, 1)
		s.metrics.observeDensePush()
	}
	// Tensors are stepped in ascending index order, not map order: an
	// outer optimizer with cross-tensor state (Adam's shared step
	// counter) must see the same sequence every run for pushes to be
	// reproducible.
	for _, t := range sortedKeys(d.Dense) {
		delta := d.Dense[t]
		sh := s.shards[s.shardOf[t]]
		sh.mu.Lock()
		tensor := sh.data[t]
		for i, v := range delta {
			tensor.Grad[i] = -v
		}
		sh.opt.Step([]*autograd.Tensor{tensor})
		sh.mu.Unlock()
		atomic.AddInt64(&s.counters.floats, int64(len(delta)))
		s.metrics.observeDenseFloats(len(delta))
	}
	for _, t := range sortedKeys(d.Rows) {
		rows := d.Rows[t]
		cols := s.layout.Cols[t]
		sh := s.shards[s.shardOf[t]]
		sh.mu.Lock()
		table := sh.data[t].Data
		for i, r := range rows {
			dst := table[r*cols : (r+1)*cols]
			for j, v := range d.RowDeltas[t][i] {
				dst[j] += sh.lr * v
			}
		}
		sh.mu.Unlock()
		atomic.AddInt64(&s.counters.rowPushes, int64(len(rows)))
		atomic.AddInt64(&s.counters.floats, int64(len(rows)*cols))
		s.metrics.observeRowPush(t, len(rows), len(rows)*cols)
	}
}

// sortedKeys returns a map's integer keys in ascending order, for
// deterministic iteration over per-tensor delta maps.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Counters implements Store.
func (s *Server) Counters() Counters {
	return Counters{
		DensePulls:  atomic.LoadInt64(&s.counters.densePulls),
		DensePushes: atomic.LoadInt64(&s.counters.densePushes),
		RowPulls:    atomic.LoadInt64(&s.counters.rowPulls),
		RowPushes:   atomic.LoadInt64(&s.counters.rowPushes),
		FloatsMoved: atomic.LoadInt64(&s.counters.floats),
	}
}

// Snapshot returns the server's current full parameter state aligned
// with the original parameter list (used to evaluate the trained model).
func (s *Server) Snapshot() paramvec.Vector {
	out := make(paramvec.Vector, s.layout.NumTensors())
	for t := 0; t < s.layout.NumTensors(); t++ {
		sh := s.shards[s.shardOf[t]]
		sh.mu.Lock()
		out[t] = append([]float64(nil), sh.data[t].Data...)
		sh.mu.Unlock()
	}
	return out
}
