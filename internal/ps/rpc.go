package ps

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"strings"
	"sync"

	"mamdr/internal/faultinject"
	"mamdr/internal/telemetry"
	"mamdr/internal/trace"
)

// The RPC transport lets workers talk to a parameter server across a
// real socket via net/rpc + gob, demonstrating that the protocol in
// worker.go is architecture-level: the same Worker code drives an
// in-process Server and a remote one.
//
// Every data call's arguments carry a trace.TraceContext, so the
// server-side span of a PullDense/PullRows/PushDelta links to the
// worker-side span that issued it even though the two ends run in
// different processes.
//
// Fault tolerance: every call — pulls and pushes alike — runs under a
// shared jittered-exponential-backoff retry policy (Backoff). Pushes
// became safe to retry once Delta grew its (WorkerID, Seq) idempotency
// token: a retried push whose first attempt actually landed is
// discarded server-side as a duplicate. A call that exhausts its
// retries dumps the flight recorder and panics, failing the worker's
// epoch loudly; the trainer's supervisor turns that panic into a dead
// worker and redistributes its domains.

// RPCService adapts a Server to net/rpc's method signature conventions.
type RPCService struct {
	server *Server
}

// PullDenseArgs carries a PullDense request.
type PullDenseArgs struct {
	TC trace.TraceContext
}

// PullRowsArgs carries a PullRows request.
type PullRowsArgs struct {
	TC     trace.TraceContext
	Tensor int
	Rows   []int
}

// PushDeltaArgs carries a PushDelta request.
type PushDeltaArgs struct {
	TC    trace.TraceContext
	Delta Delta
}

// SaveCheckpointArgs carries a SaveCheckpoint request.
type SaveCheckpointArgs struct {
	Epoch int
}

// Nothing is an empty argument/reply placeholder.
type Nothing struct{}

// remoteCtx rebuilds the calling worker's trace context on the server
// side, so the server's span joins the worker's trace.
func (s *RPCService) remoteCtx(tc trace.TraceContext) context.Context {
	return trace.WithRemote(context.Background(), s.server.tracer, tc)
}

// Layout returns the server's tensor layout.
func (s *RPCService) Layout(_ Nothing, reply *Layout) error {
	*reply = s.server.Layout()
	return nil
}

// PullDense returns all dense tensors.
func (s *RPCService) PullDense(args PullDenseArgs, reply *map[int][]float64) error {
	*reply = s.server.PullDense(s.remoteCtx(args.TC))
	return nil
}

// PullRows returns the requested embedding rows.
func (s *RPCService) PullRows(args PullRowsArgs, reply *[][]float64) error {
	*reply = s.server.PullRows(s.remoteCtx(args.TC), args.Tensor, args.Rows)
	return nil
}

// PushDelta applies a worker's outer-loop delta.
func (s *RPCService) PushDelta(args PushDeltaArgs, _ *Nothing) error {
	s.server.PushDelta(s.remoteCtx(args.TC), args.Delta)
	return nil
}

// Counters returns the traffic counters.
func (s *RPCService) Counters(_ Nothing, reply *Counters) error {
	*reply = s.server.Counters()
	return nil
}

// Ping is the liveness probe: it answers as long as the server's RPC
// loop is alive. Workers use it as a dedicated heartbeat when no data
// call is in flight.
func (s *RPCService) Ping(_ Nothing, _ *Nothing) error { return nil }

// MetricsSnapshot exports the shard's whole telemetry registry as a
// versioned snapshot for fleet federation. Socket-mode shards speak
// only gob RPC, so this is their scrape surface; the aggregator fills
// in Instance from the address it dialed. An uninstrumented server
// returns a valid empty snapshot.
func (s *RPCService) MetricsSnapshot(_ Nothing, reply *telemetry.RegistrySnapshot) error {
	snap := s.server.Metrics().Registry().Snapshot()
	snap.Role = "ps"
	*reply = snap
	return nil
}

// SaveCheckpoint persists the server's state (parameters, per-shard
// optimizer state, epoch cursor) to its configured checkpoint path.
func (s *RPCService) SaveCheckpoint(args SaveCheckpointArgs, _ *Nothing) error {
	return s.server.SaveCheckpoint(args.Epoch)
}

// LoadCheckpoint restores the server from its configured checkpoint
// path and returns the completed-epoch cursor, or -1 when no
// checkpoint exists yet.
func (s *RPCService) LoadCheckpoint(_ Nothing, reply *int) error {
	epoch, err := s.server.LoadCheckpoint()
	*reply = epoch
	return err
}

// Serve registers the server on a fresh rpc.Server and services the
// listener until it is closed. It is intended to run in its own
// goroutine; accept errors after Close are swallowed.
func Serve(server *Server, lis net.Listener) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("PS", &RPCService{server: server}); err != nil {
		panic(fmt.Sprintf("ps: rpc register: %v", err))
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		go srv.ServeConn(conn)
	}
}

// Client is a Store backed by a remote parameter server.
type Client struct {
	mu     sync.Mutex
	c      *rpc.Client // nil after a drop; conn() redials lazily
	addr   string
	layout Layout

	// backoff is the retry policy for every call; the zero value means
	// the default policy (seeded 0).
	backoff Backoff

	// injector, when non-nil, is consulted before every RPC attempt and
	// may fail it, delay it, or drop the connection first — the chaos
	// hook the fault-tolerance tests drive.
	injector *faultinject.Injector

	// metrics counts RPC failures and retries (and, like the server,
	// mirrors nothing when nil); tracer raises an rpc_error anomaly into
	// the flight recorder when a call exhausts its retries.
	metrics *Metrics
	tracer  *trace.Tracer
}

var _ Store = (*Client)(nil)
var _ CheckpointStore = (*Client)(nil)

// Dial connects to a parameter server at addr and fetches its layout.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ps: dial %s: %w", addr, err)
	}
	cl := &Client{c: c, addr: addr}
	if err := c.Call("PS.Layout", Nothing{}, &cl.layout); err != nil {
		c.Close()
		return nil, fmt.Errorf("ps: fetch layout from %s: %w", addr, err)
	}
	return cl, nil
}

// SetMetrics attaches failure counters. Attach before issuing calls.
func (cl *Client) SetMetrics(m *Metrics) { cl.metrics = m }

// SetTracer attaches the worker-side tracer so call failures raise an
// rpc_error anomaly into its flight recorder. Attach before issuing
// calls.
func (cl *Client) SetTracer(t *trace.Tracer) { cl.tracer = t }

// SetBackoff replaces the retry policy. Attach before issuing calls.
func (cl *Client) SetBackoff(b Backoff) { cl.backoff = b }

// SetInjector attaches a fault injector to the transport. Attach
// before issuing calls; nil disables injection.
func (cl *Client) SetInjector(in *faultinject.Injector) { cl.injector = in }

// Close releases the connection.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.c == nil {
		return nil
	}
	err := cl.c.Close()
	cl.c = nil
	return err
}

// conn returns the current connection, dialing a fresh one if the last
// was dropped or invalidated.
func (cl *Client) conn() (*rpc.Client, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.c == nil {
		c, err := rpc.Dial("tcp", cl.addr)
		if err != nil {
			return nil, err
		}
		cl.c = c
	}
	return cl.c, nil
}

// invalidate discards a connection that failed mid-call, so the next
// attempt redials. Only the caller holding the broken connection
// discards it; racers that arrive after the swap keep the fresh one.
func (cl *Client) invalidate(broken *rpc.Client) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.c == broken && broken != nil {
		broken.Close()
		cl.c = nil
	}
}

// dropConn force-closes the current connection (injected conn faults).
func (cl *Client) dropConn() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.c != nil {
		cl.c.Close()
		cl.c = nil
	}
}

// transient reports whether an RPC failure is plausibly recoverable by
// reconnecting: a shut-down client, a dropped connection, any
// network-level error, or an injected fault — as opposed to a
// server-side application error.
func transient(err error) bool {
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ie *faultinject.InjectedError
	if errors.As(err, &ie) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// callErr performs one logical RPC under the retry policy: transient
// transport failures (and injected faults) are retried with jittered
// exponential backoff up to the policy's attempt budget; server-side
// application errors and context cancellation stop retrying
// immediately. Every attempt first asks the fault injector for a
// verdict, so chaos schedules exercise exactly this code path. The
// injected-vs-organic distinction is visible on the call's span
// ("injected" attribute) and in the flight-recorder trigger fields.
func (cl *Client) callErr(ctx context.Context, method string, args, reply any) error {
	pol := cl.backoff.WithDefaults()
	op := strings.TrimPrefix(method, "PS.")
	_, sp := trace.Start(ctx, "ps.rpc", trace.A("method", op))
	injected := false
	var lastErr error

	for attempt := 1; attempt <= pol.Attempts; attempt++ {
		if attempt > 1 {
			cl.metrics.observeRPCRetry(op)
			if err := cl.backoff.Wait(ctx, attempt-1); err != nil {
				lastErr = err
				break
			}
		}
		if f := cl.injector.Eval(op); f.Err != nil || f.Delay > 0 || f.DropConn {
			if f.Delay > 0 {
				if err := sleepCtx(ctx, f.Delay); err != nil {
					lastErr = err
					break
				}
			}
			if f.DropConn {
				cl.dropConn()
			}
			if f.Err != nil {
				injected = true
				lastErr = f.Err
				cl.metrics.observeRPCFailure(op)
				continue
			}
		}
		conn, err := cl.conn()
		if err != nil {
			lastErr = err
			cl.metrics.observeRPCFailure(op)
			continue
		}
		if err := conn.Call(method, args, reply); err != nil {
			lastErr = err
			cl.metrics.observeRPCFailure(op)
			if !transient(err) {
				break // server-side application error: retrying cannot help
			}
			cl.invalidate(conn)
			continue
		}
		sp.EndWith(trace.A("attempts", attempt), trace.A("injected", injected))
		return nil
	}
	sp.EndWith(trace.A("attempts", pol.Attempts), trace.A("injected", injected),
		trace.A("error", lastErr.Error()))
	return lastErr
}

// call is callErr for calls the worker cannot survive: exhausting the
// retry budget dumps the flight recorder (with the trace context and
// whether the last failure was injected) and panics with the remote
// address and method, failing the epoch loudly — a worker must never
// silently desync from its parameter server.
func (cl *Client) call(ctx context.Context, method string, args, reply any) {
	err := cl.callErr(ctx, method, args, reply)
	if err == nil {
		return
	}
	var ie *faultinject.InjectedError
	fields := map[string]any{
		"method":   method,
		"addr":     cl.addr,
		"error":    err.Error(),
		"injected": errors.As(err, &ie),
	}
	if tc := trace.ContextOf(ctx); tc.Valid() {
		fields["trace_id"], fields["span_id"] = tc.TraceID, tc.SpanID
	}
	cl.tracer.Flight().Trigger("rpc_error", fields)
	panic(fmt.Sprintf("ps: rpc %s to %s: %v", method, cl.addr, err))
}

// Layout implements Store.
func (cl *Client) Layout() Layout { return cl.layout }

// PullDense implements Store.
func (cl *Client) PullDense(ctx context.Context) map[int][]float64 {
	var reply map[int][]float64
	cl.call(ctx, "PS.PullDense", PullDenseArgs{TC: trace.ContextOf(ctx)}, &reply)
	return reply
}

// PullRows implements Store.
func (cl *Client) PullRows(ctx context.Context, tensor int, rows []int) [][]float64 {
	var reply [][]float64
	cl.call(ctx, "PS.PullRows", PullRowsArgs{TC: trace.ContextOf(ctx), Tensor: tensor, Rows: rows}, &reply)
	return reply
}

// PushDelta implements Store. Pushes carry a (WorkerID, Seq) token, so
// the server discards a retried push whose earlier attempt actually
// landed — which is what makes retrying them safe at all. A push that
// exhausts its retries panics (epoch abort) rather than dropping the
// delta silently.
func (cl *Client) PushDelta(ctx context.Context, d Delta) {
	cl.call(ctx, "PS.PushDelta", PushDeltaArgs{TC: trace.ContextOf(ctx), Delta: d}, &Nothing{})
}

// Counters implements Store.
func (cl *Client) Counters() Counters {
	var reply Counters
	cl.call(context.Background(), "PS.Counters", Nothing{}, &reply)
	return reply
}

// Ping probes server liveness through the retry policy, returning an
// error only when the full attempt budget failed.
func (cl *Client) Ping(ctx context.Context) error {
	return cl.callErr(ctx, "PS.Ping", Nothing{}, &Nothing{})
}

// SaveCheckpoint implements CheckpointStore over RPC: the server
// persists its state to its own configured checkpoint path.
func (cl *Client) SaveCheckpoint(epoch int) error {
	return cl.callErr(context.Background(), "PS.SaveCheckpoint", SaveCheckpointArgs{Epoch: epoch}, &Nothing{})
}

// LoadCheckpoint implements CheckpointStore over RPC. It returns -1
// with a nil error when the server has no checkpoint yet (net/rpc
// flattens error values, so absence is signaled in-band rather than
// with a sentinel error).
func (cl *Client) LoadCheckpoint() (int, error) {
	var epoch int
	if err := cl.callErr(context.Background(), "PS.LoadCheckpoint", Nothing{}, &epoch); err != nil {
		return 0, err
	}
	return epoch, nil
}
