package ps

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"

	"mamdr/internal/trace"
)

// The RPC transport lets workers talk to a parameter server across a
// real socket via net/rpc + gob, demonstrating that the protocol in
// worker.go is architecture-level: the same Worker code drives an
// in-process Server and a remote one.
//
// Every data call's arguments carry a trace.TraceContext, so the
// server-side span of a PullDense/PullRows/PushDelta links to the
// worker-side span that issued it even though the two ends run in
// different processes.

// RPCService adapts a Server to net/rpc's method signature conventions.
type RPCService struct {
	server *Server
}

// PullDenseArgs carries a PullDense request.
type PullDenseArgs struct {
	TC trace.TraceContext
}

// PullRowsArgs carries a PullRows request.
type PullRowsArgs struct {
	TC     trace.TraceContext
	Tensor int
	Rows   []int
}

// PushDeltaArgs carries a PushDelta request.
type PushDeltaArgs struct {
	TC    trace.TraceContext
	Delta Delta
}

// Nothing is an empty argument/reply placeholder.
type Nothing struct{}

// remoteCtx rebuilds the calling worker's trace context on the server
// side, so the server's span joins the worker's trace.
func (s *RPCService) remoteCtx(tc trace.TraceContext) context.Context {
	return trace.WithRemote(context.Background(), s.server.tracer, tc)
}

// Layout returns the server's tensor layout.
func (s *RPCService) Layout(_ Nothing, reply *Layout) error {
	*reply = s.server.Layout()
	return nil
}

// PullDense returns all dense tensors.
func (s *RPCService) PullDense(args PullDenseArgs, reply *map[int][]float64) error {
	*reply = s.server.PullDense(s.remoteCtx(args.TC))
	return nil
}

// PullRows returns the requested embedding rows.
func (s *RPCService) PullRows(args PullRowsArgs, reply *[][]float64) error {
	*reply = s.server.PullRows(s.remoteCtx(args.TC), args.Tensor, args.Rows)
	return nil
}

// PushDelta applies a worker's outer-loop delta.
func (s *RPCService) PushDelta(args PushDeltaArgs, _ *Nothing) error {
	s.server.PushDelta(s.remoteCtx(args.TC), args.Delta)
	return nil
}

// Counters returns the traffic counters.
func (s *RPCService) Counters(_ Nothing, reply *Counters) error {
	*reply = s.server.Counters()
	return nil
}

// Serve registers the server on a fresh rpc.Server and services the
// listener until it is closed. It is intended to run in its own
// goroutine; accept errors after Close are swallowed.
func Serve(server *Server, lis net.Listener) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("PS", &RPCService{server: server}); err != nil {
		panic(fmt.Sprintf("ps: rpc register: %v", err))
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		go srv.ServeConn(conn)
	}
}

// Client is a Store backed by a remote parameter server.
type Client struct {
	mu     sync.Mutex
	c      *rpc.Client
	addr   string
	layout Layout

	// metrics counts RPC failures (and, like the server, mirrors
	// nothing when nil); tracer raises an rpc_error anomaly into the
	// flight recorder on a call failure.
	metrics *Metrics
	tracer  *trace.Tracer
}

var _ Store = (*Client)(nil)

// Dial connects to a parameter server at addr and fetches its layout.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ps: dial %s: %w", addr, err)
	}
	cl := &Client{c: c, addr: addr}
	if err := c.Call("PS.Layout", Nothing{}, &cl.layout); err != nil {
		c.Close()
		return nil, fmt.Errorf("ps: fetch layout from %s: %w", addr, err)
	}
	return cl, nil
}

// SetMetrics attaches failure counters. Attach before issuing calls.
func (cl *Client) SetMetrics(m *Metrics) { cl.metrics = m }

// SetTracer attaches the worker-side tracer so call failures raise an
// rpc_error anomaly into its flight recorder. Attach before issuing
// calls.
func (cl *Client) SetTracer(t *trace.Tracer) { cl.tracer = t }

// Close releases the connection.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.c.Close()
}

// conn returns the current connection.
func (cl *Client) conn() *rpc.Client {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.c
}

// redial replaces a connection that failed mid-call. Only the first
// caller holding the broken connection reconnects; racers that arrive
// after the swap reuse the fresh one.
func (cl *Client) redial(broken *rpc.Client) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.c != broken {
		return nil // another goroutine already reconnected
	}
	c, err := rpc.Dial("tcp", cl.addr)
	if err != nil {
		return err
	}
	cl.c.Close()
	cl.c = c
	return nil
}

// transient reports whether an RPC failure is plausibly recoverable by
// reconnecting: a shut-down client, a dropped connection, or any
// network-level error — as opposed to a server-side application error.
func transient(err error) bool {
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// call performs one RPC. Failures are counted in the telemetry
// registry and raise an rpc_error anomaly (dumping the flight
// recorder) before panicking with the remote address and method — a
// worker cannot make progress without its parameter server, but the
// operator should learn *which* server and call died, with the spans
// leading up to it. Idempotent calls (retry=true: the pulls) get one
// bounded reconnect-and-retry on transient transport errors first.
func (cl *Client) call(ctx context.Context, method string, args, reply any, retry bool) {
	conn := cl.conn()
	err := conn.Call(method, args, reply)
	if err == nil {
		return
	}
	cl.metrics.observeRPCFailure(method)
	if retry && transient(err) {
		if rerr := cl.redial(conn); rerr == nil {
			if err = cl.conn().Call(method, args, reply); err == nil {
				return
			}
			cl.metrics.observeRPCFailure(method)
		}
	}
	fields := map[string]any{"method": method, "addr": cl.addr, "error": err.Error()}
	if tc := trace.ContextOf(ctx); tc.Valid() {
		fields["trace_id"], fields["span_id"] = tc.TraceID, tc.SpanID
	}
	cl.tracer.Flight().Trigger("rpc_error", fields)
	panic(fmt.Sprintf("ps: rpc %s to %s: %v", method, cl.addr, err))
}

// Layout implements Store.
func (cl *Client) Layout() Layout { return cl.layout }

// PullDense implements Store.
func (cl *Client) PullDense(ctx context.Context) map[int][]float64 {
	var reply map[int][]float64
	cl.call(ctx, "PS.PullDense", PullDenseArgs{TC: trace.ContextOf(ctx)}, &reply, true)
	return reply
}

// PullRows implements Store.
func (cl *Client) PullRows(ctx context.Context, tensor int, rows []int) [][]float64 {
	var reply [][]float64
	cl.call(ctx, "PS.PullRows", PullRowsArgs{TC: trace.ContextOf(ctx), Tensor: tensor, Rows: rows}, &reply, true)
	return reply
}

// PushDelta implements Store. Pushes are not idempotent (the server
// folds each delta into its optimizer state), so they are never
// retried: a transient failure mid-push still panics rather than risk
// double-applying an update.
func (cl *Client) PushDelta(ctx context.Context, d Delta) {
	cl.call(ctx, "PS.PushDelta", PushDeltaArgs{TC: trace.ContextOf(ctx), Delta: d}, &Nothing{}, false)
}

// Counters implements Store.
func (cl *Client) Counters() Counters {
	var reply Counters
	cl.call(context.Background(), "PS.Counters", Nothing{}, &reply, true)
	return reply
}
