package ps

import (
	"fmt"
	"net"
	"net/rpc"
)

// The RPC transport lets workers talk to a parameter server across a
// real socket via net/rpc + gob, demonstrating that the protocol in
// worker.go is architecture-level: the same Worker code drives an
// in-process Server and a remote one.

// RPCService adapts a Server to net/rpc's method signature conventions.
type RPCService struct {
	server *Server
}

// PullRowsArgs carries a PullRows request.
type PullRowsArgs struct {
	Tensor int
	Rows   []int
}

// Nothing is an empty argument/reply placeholder.
type Nothing struct{}

// Layout returns the server's tensor layout.
func (s *RPCService) Layout(_ Nothing, reply *Layout) error {
	*reply = s.server.Layout()
	return nil
}

// PullDense returns all dense tensors.
func (s *RPCService) PullDense(_ Nothing, reply *map[int][]float64) error {
	*reply = s.server.PullDense()
	return nil
}

// PullRows returns the requested embedding rows.
func (s *RPCService) PullRows(args PullRowsArgs, reply *[][]float64) error {
	*reply = s.server.PullRows(args.Tensor, args.Rows)
	return nil
}

// PushDelta applies a worker's outer-loop delta.
func (s *RPCService) PushDelta(d Delta, _ *Nothing) error {
	s.server.PushDelta(d)
	return nil
}

// Counters returns the traffic counters.
func (s *RPCService) Counters(_ Nothing, reply *Counters) error {
	*reply = s.server.Counters()
	return nil
}

// Serve registers the server on a fresh rpc.Server and services the
// listener until it is closed. It is intended to run in its own
// goroutine; accept errors after Close are swallowed.
func Serve(server *Server, lis net.Listener) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("PS", &RPCService{server: server}); err != nil {
		panic(fmt.Sprintf("ps: rpc register: %v", err))
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		go srv.ServeConn(conn)
	}
}

// Client is a Store backed by a remote parameter server.
type Client struct {
	c      *rpc.Client
	layout Layout
}

var _ Store = (*Client)(nil)

// Dial connects to a parameter server at addr and fetches its layout.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ps: dial %s: %w", addr, err)
	}
	cl := &Client{c: c}
	if err := c.Call("PS.Layout", Nothing{}, &cl.layout); err != nil {
		c.Close()
		return nil, fmt.Errorf("ps: fetch layout: %w", err)
	}
	return cl, nil
}

// Close releases the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// Layout implements Store.
func (cl *Client) Layout() Layout { return cl.layout }

// PullDense implements Store.
func (cl *Client) PullDense() map[int][]float64 {
	var reply map[int][]float64
	if err := cl.c.Call("PS.PullDense", Nothing{}, &reply); err != nil {
		panic(fmt.Sprintf("ps: PullDense: %v", err))
	}
	return reply
}

// PullRows implements Store.
func (cl *Client) PullRows(tensor int, rows []int) [][]float64 {
	var reply [][]float64
	if err := cl.c.Call("PS.PullRows", PullRowsArgs{Tensor: tensor, Rows: rows}, &reply); err != nil {
		panic(fmt.Sprintf("ps: PullRows: %v", err))
	}
	return reply
}

// PushDelta implements Store.
func (cl *Client) PushDelta(d Delta) {
	if err := cl.c.Call("PS.PushDelta", d, &Nothing{}); err != nil {
		panic(fmt.Sprintf("ps: PushDelta: %v", err))
	}
}

// Counters implements Store.
func (cl *Client) Counters() Counters {
	var reply Counters
	if err := cl.c.Call("PS.Counters", Nothing{}, &reply); err != nil {
		panic(fmt.Sprintf("ps: Counters: %v", err))
	}
	return reply
}
