package ps

import (
	"fmt"
	"sort"

	"mamdr/internal/autograd"
)

// Plan deterministically partitions a Layout across NumShards parameter
// server shards — the multi-PS deployment of Section IV-E ("the model is
// stored on parameter servers", 40 of them in the paper's industrial
// setup). It is a pure function of (Layout, NumShards, Seed):
//
//   - embedding rows are assigned individually by rendezvous hashing on
//     (tensor, row), so the sparse tables that dominate model size
//     spread evenly across shards and most rows stay put when the shard
//     count changes;
//   - dense tensors are assigned whole to shards, largest first onto the
//     least-loaded shard (counting the embedding rows already placed),
//     so per-shard element counts balance.
//
// Because every shard applies the same elementwise updates to its slice
// that a single server would (SGD rows, per-tensor outer-optimizer
// state), training over a Plan is bit-identical across shard counts for
// the sgd and adagrad outer optimizers. (Adam couples the tensors of
// one optimizer through its shared step counter, so its trajectory
// depends on which tensors share a server.)
type Plan struct {
	Layout    Layout
	NumShards int
	Seed      int64

	// TensorShard[t] is the owning shard of dense tensor t, or -1 for
	// embedding tensors, whose rows are assigned individually.
	TensorShard []int

	// rowShard[t][r] is the owning shard of row r of embedding tensor t
	// (nil for dense tensors); localRow[t][r] is that row's index within
	// the owning shard's sub-table.
	rowShard [][]int32
	localRow [][]int32

	// shardTensors[sh] lists the global tensor indices present on shard
	// sh in ascending order — the shard's local tensor order.
	// localTensor[sh][t] inverts it (-1 when absent).
	shardTensors [][]int
	localTensor  [][]int

	// shardRowCount[sh][t] is how many rows of embedding tensor t live
	// on shard sh; elements[sh] is the shard's total element count.
	shardRowCount [][]int
	elements      []int
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed 64-bit
// hash used for rendezvous row assignment.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rendezvous returns the shard maximizing hash(seed, tensor, row, shard)
// — ties broken toward the lower shard index, so the assignment is a
// total deterministic function.
func rendezvous(seed int64, tensor, row, numShards int) int {
	best, bestH := 0, uint64(0)
	base := splitmix64(uint64(seed)) ^ splitmix64(uint64(tensor)<<32|uint64(uint32(row)))
	for sh := 0; sh < numShards; sh++ {
		h := splitmix64(base ^ splitmix64(uint64(sh)+0x6a09e667f3bcc909))
		if sh == 0 || h > bestH {
			best, bestH = sh, h
		}
	}
	return best
}

// NewPlan partitions layout across numShards shards. It panics on an
// invalid layout (the same contract as NewServer — an unpartitionable
// layout is a bug, not a recoverable condition). numShards < 1 is
// clamped to 1; the 1-shard plan assigns everything to shard 0 and a
// Router over it degenerates to a plain single-server deployment.
func NewPlan(layout Layout, numShards int, seed int64) Plan {
	if err := layout.Validate(-1); err != nil {
		panic(err)
	}
	if numShards < 1 {
		numShards = 1
	}
	n := layout.NumTensors()
	p := Plan{
		Layout:        layout,
		NumShards:     numShards,
		Seed:          seed,
		TensorShard:   make([]int, n),
		rowShard:      make([][]int32, n),
		localRow:      make([][]int32, n),
		shardRowCount: make([][]int, numShards),
		elements:      make([]int, numShards),
	}
	for sh := 0; sh < numShards; sh++ {
		p.shardRowCount[sh] = make([]int, n)
	}

	// Embedding rows first: rendezvous-hash each (tensor, row) and
	// record its local index as the rank among its shard's rows.
	for t := 0; t < n; t++ {
		if !layout.Embedding[t] {
			continue
		}
		p.TensorShard[t] = -1
		rows, cols := layout.Rows[t], layout.Cols[t]
		p.rowShard[t] = make([]int32, rows)
		p.localRow[t] = make([]int32, rows)
		for r := 0; r < rows; r++ {
			sh := rendezvous(seed, t, r, numShards)
			p.rowShard[t][r] = int32(sh)
			p.localRow[t][r] = int32(p.shardRowCount[sh][t])
			p.shardRowCount[sh][t]++
			p.elements[sh] += cols
		}
	}

	// Dense tensors: largest first onto the least-loaded shard, ties
	// toward the lower index — deterministic greedy balancing.
	type denseT struct{ t, size int }
	var dense []denseT
	for t := 0; t < n; t++ {
		if !layout.Embedding[t] {
			dense = append(dense, denseT{t, layout.Rows[t] * layout.Cols[t]})
		}
	}
	sort.SliceStable(dense, func(i, j int) bool {
		if dense[i].size != dense[j].size {
			return dense[i].size > dense[j].size
		}
		return dense[i].t < dense[j].t
	})
	for _, d := range dense {
		best := 0
		for sh := 1; sh < numShards; sh++ {
			if p.elements[sh] < p.elements[best] {
				best = sh
			}
		}
		p.TensorShard[d.t] = best
		p.elements[best] += d.size
	}

	// Per-shard tensor presence and the local index mapping.
	p.shardTensors = make([][]int, numShards)
	p.localTensor = make([][]int, numShards)
	for sh := 0; sh < numShards; sh++ {
		p.localTensor[sh] = make([]int, n)
		for t := 0; t < n; t++ {
			p.localTensor[sh][t] = -1
			present := false
			if layout.Embedding[t] {
				present = p.shardRowCount[sh][t] > 0
			} else {
				present = p.TensorShard[t] == sh
			}
			if present {
				p.localTensor[sh][t] = len(p.shardTensors[sh])
				p.shardTensors[sh] = append(p.shardTensors[sh], t)
			}
		}
	}
	return p
}

// ShardOfRow returns the shard owning row r of embedding tensor t.
func (p *Plan) ShardOfRow(t, r int) int { return int(p.rowShard[t][r]) }

// LocalRow returns row r's index within its owning shard's sub-table.
func (p *Plan) LocalRow(t, r int) int { return int(p.localRow[t][r]) }

// ShardOfTensor returns the shard owning dense tensor t (-1 for
// embedding tensors).
func (p *Plan) ShardOfTensor(t int) int { return p.TensorShard[t] }

// ShardTensors returns the global tensor indices present on shard sh,
// ascending — index i of the slice is the shard's local tensor i.
func (p *Plan) ShardTensors(sh int) []int { return p.shardTensors[sh] }

// LocalTensor returns global tensor t's local index on shard sh, or -1
// when the shard holds none of it.
func (p *Plan) LocalTensor(sh, t int) int { return p.localTensor[sh][t] }

// ShardRows returns the global rows of embedding tensor t owned by
// shard sh, ascending — index i of the slice is local row i.
func (p *Plan) ShardRows(sh, t int) []int {
	if p.shardRowCount[sh][t] == 0 {
		return nil
	}
	out := make([]int, 0, p.shardRowCount[sh][t])
	for r, owner := range p.rowShard[t] {
		if int(owner) == sh {
			out = append(out, r)
		}
	}
	return out
}

// ShardLayout builds shard sh's sub-layout: owned dense tensors whole,
// embedding sub-tables holding only the shard's rows. Tensors absent
// from the shard are omitted, so the sub-layout always validates.
func (p *Plan) ShardLayout(sh int) Layout {
	var l Layout
	for _, t := range p.shardTensors[sh] {
		rows := p.Layout.Rows[t]
		if p.Layout.Embedding[t] {
			rows = p.shardRowCount[sh][t]
		}
		l.Rows = append(l.Rows, rows)
		l.Cols = append(l.Cols, p.Layout.Cols[t])
		l.Embedding = append(l.Embedding, p.Layout.Embedding[t])
		l.Field = append(l.Field, p.Layout.Field[t])
	}
	return l
}

// ShardTables returns shard sh's embedding classification in local
// tensor indices — what NewServer takes for the shard's sub-parameters.
func (p *Plan) ShardTables(sh int) map[int]int {
	tables := map[int]int{}
	for local, t := range p.shardTensors[sh] {
		if p.Layout.Embedding[t] {
			tables[local] = p.Layout.Field[t]
		}
	}
	return tables
}

// ShardParams slices the full parameter list down to shard sh's
// sub-parameters (fresh copies): owned dense tensors whole, embedding
// sub-tables gathering the shard's rows in ascending global-row order.
func (p *Plan) ShardParams(params []*autograd.Tensor, sh int) []*autograd.Tensor {
	if len(params) != p.Layout.NumTensors() {
		panic(fmt.Sprintf("ps: plan manages %d tensors, got %d parameters", p.Layout.NumTensors(), len(params)))
	}
	var out []*autograd.Tensor
	for _, t := range p.shardTensors[sh] {
		src := params[t]
		if !p.Layout.Embedding[t] {
			out = append(out, autograd.Param(src.Rows, src.Cols, append([]float64(nil), src.Data...)))
			continue
		}
		cols := src.Cols
		data := make([]float64, 0, p.shardRowCount[sh][t]*cols)
		for _, r := range p.ShardRows(sh, t) {
			data = append(data, src.Data[r*cols:(r+1)*cols]...)
		}
		out = append(out, autograd.Param(p.shardRowCount[sh][t], cols, data))
	}
	return out
}

// Elements returns shard sh's total element count.
func (p *Plan) Elements(sh int) int { return p.elements[sh] }

// Imbalance is the load-balance figure of merit: the largest shard's
// element count over the mean (1.0 = perfectly balanced). It is the
// value the cluster telemetry exports as the imbalance gauge.
func (p *Plan) Imbalance() float64 {
	max, total := 0, 0
	for _, e := range p.elements {
		total += e
		if e > max {
			max = e
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(p.NumShards) / float64(total)
}

// String summarizes the plan for logs.
func (p *Plan) String() string {
	return fmt.Sprintf("ps.Plan{%d tensors -> %d shards, seed %d, imbalance %.3f}",
		p.Layout.NumTensors(), p.NumShards, p.Seed, p.Imbalance())
}

// ShardCheckpointPath derives the checkpoint path of shard sh in a
// cluster of `of` shards from the cluster's base path, so every shard
// of a partitioned deployment persists next to where a single server
// would ("ps.ckpt" -> "ps.ckpt.shard0of4", ...).
func ShardCheckpointPath(base string, sh, of int) string {
	return fmt.Sprintf("%s.shard%dof%d", base, sh, of)
}
