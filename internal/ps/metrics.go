package ps

import (
	"strconv"
	"sync"

	"mamdr/internal/telemetry"
)

// Metrics mirrors parameter-server traffic into a telemetry registry as
// live time series: the pull/push call and float counters that the ad
// hoc Counters struct has always tallied, plus per-tensor row-sync
// volume, the worker-side dynamic-cache hit/miss ratio, and the
// distribution of row staleness (how many local batches a cached
// embedding row went without re-pulling from the PS — the quantity the
// paper's static/dynamic cache design bounds).
//
// One Metrics may be shared by a Server and all its Workers; every
// method is safe for concurrent use and nil-receiver-safe, so the
// uninstrumented path costs nothing.
type Metrics struct {
	reg *telemetry.Registry

	densePulls, densePushes *telemetry.Counter
	rowPulls, rowPushes     *telemetry.Counter
	floats                  *telemetry.Counter
	cacheHits, cacheMisses  *telemetry.Counter
	hitRatio                *telemetry.Gauge
	staleness               *telemetry.Histogram

	pushFailures    *telemetry.Counter // pushes that failed after retries
	duplicatePushes *telemetry.Counter // retried pushes discarded by seq dedup
	workerDeaths    *telemetry.Counter // workers the supervisor declared dead

	mu          sync.Mutex
	rowFloats   map[int]*telemetry.Counter    // per-tensor row-sync volume
	rpcFailures map[string]*telemetry.Counter // per-method RPC failures
	rpcRetries  map[string]*telemetry.Counter // per-method retry attempts
}

// NewMetrics registers the PS series in reg. A nil registry yields a
// nil (disabled) Metrics.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg: reg,
		densePulls: reg.Counter("mamdr_ps_dense_pulls_total",
			"PullDense calls served by the parameter server."),
		densePushes: reg.Counter("mamdr_ps_dense_pushes_total",
			"PushDelta calls that carried dense tensor deltas."),
		rowPulls: reg.Counter("mamdr_ps_row_pulls_total",
			"Embedding rows pulled from the parameter server."),
		rowPushes: reg.Counter("mamdr_ps_row_pushes_total",
			"Embedding rows pushed to the parameter server."),
		floats: reg.Counter("mamdr_ps_floats_moved_total",
			"Float64 values moved between workers and the PS — the synchronization-overhead metric of the cache experiments."),
		cacheHits: reg.Counter("mamdr_ps_cache_hits_total",
			"Embedding rows resolved from the worker dynamic cache without a PS round trip."),
		cacheMisses: reg.Counter("mamdr_ps_cache_misses_total",
			"Embedding rows that missed the dynamic cache and were pulled from the PS."),
		hitRatio: reg.Gauge("mamdr_ps_cache_hit_ratio",
			"Cumulative dynamic-cache hit ratio: hits / (hits + misses)."),
		staleness: reg.Histogram("mamdr_ps_row_staleness_batches",
			"Local mini-batches a cached embedding row aged between its PS pull and its delta push.",
			telemetry.ExponentialBuckets(1, 2, 9)),
		pushFailures: reg.Counter("mamdr_ps_push_failures_total",
			"Outer-loop delta pushes that failed after exhausting retries (each aborts its worker's epoch)."),
		duplicatePushes: reg.Counter("mamdr_ps_duplicate_pushes_total",
			"Retried pushes the server discarded via the (worker, seq) idempotency token."),
		workerDeaths: reg.Counter("mamdr_ps_worker_deaths_total",
			"Workers the trainer's supervisor declared dead (crash or missed heartbeats)."),
		rowFloats:   map[int]*telemetry.Counter{},
		rpcFailures: map[string]*telemetry.Counter{},
		rpcRetries:  map[string]*telemetry.Counter{},
	}
}

// Registry returns the registry the metrics mirror into (nil for a
// disabled Metrics). The PS RPC surface uses it to export snapshots of
// the whole process registry for fleet federation.
func (m *Metrics) Registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// observePushFailure counts one push that failed after exhausting its
// retry budget (push_failures_total).
func (m *Metrics) observePushFailure() {
	if m == nil {
		return
	}
	m.pushFailures.Inc()
}

// observeDuplicatePush counts one retried push the server discarded via
// sequence dedup.
func (m *Metrics) observeDuplicatePush() {
	if m == nil {
		return
	}
	m.duplicatePushes.Inc()
}

// observeWorkerDeath counts one worker the supervisor declared dead.
func (m *Metrics) observeWorkerDeath() {
	if m == nil {
		return
	}
	m.workerDeaths.Inc()
}

// observeRPCRetry counts one retry attempt by method.
func (m *Metrics) observeRPCRetry(method string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c, ok := m.rpcRetries[method]
	if !ok {
		c = m.reg.Counter("mamdr_ps_rpc_retries_total",
			"Worker-to-PS RPC retry attempts by method (jittered exponential backoff).",
			telemetry.L("method", method))
		m.rpcRetries[method] = c
	}
	m.mu.Unlock()
	c.Inc()
}

// observeRPCFailure counts one failed RPC call by method. It is on
// the failure path only, so the mutex-guarded lookup costs nothing in
// healthy runs.
func (m *Metrics) observeRPCFailure(method string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c, ok := m.rpcFailures[method]
	if !ok {
		c = m.reg.Counter("mamdr_ps_rpc_failures_total",
			"Failed worker-to-PS RPC calls by method (including failed retries).",
			telemetry.L("method", method))
		m.rpcFailures[method] = c
	}
	m.mu.Unlock()
	c.Inc()
}

// observeDensePull records one PullDense serving n floats.
func (m *Metrics) observeDensePull(n int) {
	if m == nil {
		return
	}
	m.densePulls.Inc()
	m.floats.Add(int64(n))
}

// observeRowPull records rows embedding rows pulled (n floats total)
// from tensor t.
func (m *Metrics) observeRowPull(t, rows, n int) {
	if m == nil {
		return
	}
	m.rowPulls.Add(int64(rows))
	m.floats.Add(int64(n))
	m.tensorRowFloats(t).Add(int64(n))
}

// observeDensePush records one push carrying dense deltas.
func (m *Metrics) observeDensePush() {
	if m == nil {
		return
	}
	m.densePushes.Inc()
}

// observeDenseFloats records n dense floats moved in a push.
func (m *Metrics) observeDenseFloats(n int) {
	if m == nil {
		return
	}
	m.floats.Add(int64(n))
}

// observeRowPush records rows embedding-row deltas (n floats total)
// pushed into tensor t.
func (m *Metrics) observeRowPush(t, rows, n int) {
	if m == nil {
		return
	}
	m.rowPushes.Add(int64(rows))
	m.floats.Add(int64(n))
	m.tensorRowFloats(t).Add(int64(n))
}

// observeCacheResolve records one batch's embedding-row resolution.
func (m *Metrics) observeCacheResolve(hits, misses int) {
	if m == nil || hits+misses == 0 {
		return
	}
	m.cacheHits.Add(int64(hits))
	m.cacheMisses.Add(int64(misses))
	h, miss := float64(m.cacheHits.Value()), float64(m.cacheMisses.Value())
	m.hitRatio.Set(h / (h + miss))
}

// observeStaleness records how many batches a row aged in the dynamic
// cache before its delta was pushed.
func (m *Metrics) observeStaleness(batches int) {
	if m == nil {
		return
	}
	m.staleness.Observe(float64(batches))
}

// tensorRowFloats lazily creates the per-tensor row-sync counter.
func (m *Metrics) tensorRowFloats(t int) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.rowFloats[t]
	if !ok {
		c = m.reg.Counter("mamdr_ps_row_sync_floats_total",
			"Row-synchronized floats per embedding tensor.",
			telemetry.L("tensor", strconv.Itoa(t)))
		m.rowFloats[t] = c
	}
	return c
}
