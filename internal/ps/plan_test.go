package ps

import (
	"reflect"
	"testing"

	"mamdr/internal/autograd"
)

func planTestLayout() (Layout, []*autograd.Tensor) {
	params := []*autograd.Tensor{
		autograd.ParamZeros(500, 4), // embedding, field 0
		autograd.ParamZeros(96, 8),  // wide dense
		autograd.ParamZeros(300, 6), // embedding, field 2
		autograd.ParamZeros(16, 8),  // dense
		autograd.ParamZeros(1, 8),   // dense
	}
	for i, p := range params {
		for j := range p.Data {
			p.Data[j] = float64(i*100000 + j) // recognizable values
		}
	}
	return LayoutOf(params, map[int]int{0: 0, 2: 2}), params
}

// TestPlanIsPureFunction pins the partition plan's core contract: the
// same (layout, shards, seed) always yields the same assignment, and a
// different seed yields a different row placement.
func TestPlanIsPureFunction(t *testing.T) {
	layout, _ := planTestLayout()
	a := NewPlan(layout, 4, 7)
	b := NewPlan(layout, 4, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two plans over identical inputs differ")
	}
	c := NewPlan(layout, 4, 8)
	if reflect.DeepEqual(a.rowShard, c.rowShard) {
		t.Fatal("changing the seed left every row in place; hashing ignores the seed")
	}
}

// TestPlanCoversEveryParameterExactlyOnce: every dense tensor has one
// owner, every embedding row has one owner, and the local-index maps are
// consistent with the per-shard layouts.
func TestPlanCoversEveryParameterExactlyOnce(t *testing.T) {
	layout, params := planTestLayout()
	p := NewPlan(layout, 3, 7)

	for t2 := 0; t2 < layout.NumTensors(); t2++ {
		if layout.Embedding[t2] {
			if p.ShardOfTensor(t2) != -1 {
				t.Fatalf("embedding tensor %d has a whole-tensor owner", t2)
			}
			seen := map[int]map[int]bool{} // shard -> local rows
			for r := 0; r < layout.Rows[t2]; r++ {
				sh := p.ShardOfRow(t2, r)
				if sh < 0 || sh >= 3 {
					t.Fatalf("row %d of tensor %d assigned to shard %d", r, t2, sh)
				}
				if seen[sh] == nil {
					seen[sh] = map[int]bool{}
				}
				lr := p.LocalRow(t2, r)
				if seen[sh][lr] {
					t.Fatalf("local row %d on shard %d assigned twice", lr, sh)
				}
				seen[sh][lr] = true
			}
		} else if sh := p.ShardOfTensor(t2); sh < 0 || sh >= 3 {
			t.Fatalf("dense tensor %d assigned to shard %d", t2, sh)
		}
	}

	// Per-shard layouts validate and the sliced parameters carry exactly
	// the rows the plan assigned, in ascending global order.
	totalElements := 0
	for sh := 0; sh < 3; sh++ {
		sub := p.ShardLayout(sh)
		if err := sub.Validate(-1); err != nil {
			t.Fatalf("shard %d sub-layout invalid: %v", sh, err)
		}
		shardParams := p.ShardParams(params, sh)
		if len(shardParams) != sub.NumTensors() {
			t.Fatalf("shard %d: %d params vs %d layout tensors", sh, len(shardParams), sub.NumTensors())
		}
		for local, gt := range p.ShardTensors(sh) {
			if p.LocalTensor(sh, gt) != local {
				t.Fatalf("LocalTensor(%d, %d) = %d, want %d", sh, gt, p.LocalTensor(sh, gt), local)
			}
			sp := shardParams[local]
			if !layout.Embedding[gt] {
				if !reflect.DeepEqual(sp.Data, params[gt].Data) {
					t.Fatalf("dense tensor %d corrupted on shard %d", gt, sh)
				}
				continue
			}
			cols := layout.Cols[gt]
			for localRow, globalRow := range p.ShardRows(sh, gt) {
				if p.LocalRow(gt, globalRow) != localRow {
					t.Fatalf("LocalRow(%d, %d) = %d, want %d", gt, globalRow, p.LocalRow(gt, globalRow), localRow)
				}
				want := params[gt].Data[globalRow*cols : (globalRow+1)*cols]
				got := sp.Data[localRow*cols : (localRow+1)*cols]
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("tensor %d row %d sliced wrong on shard %d: %v vs %v", gt, globalRow, sh, got, want)
				}
			}
		}
		totalElements += p.Elements(sh)
	}
	want := 0
	for _, pr := range params {
		want += len(pr.Data)
	}
	if totalElements != want {
		t.Fatalf("shards hold %d elements, model has %d", totalElements, want)
	}
}

// TestPlanBalancesShards: rendezvous hashing plus greedy dense placement
// should keep the largest shard within a loose factor of the mean.
func TestPlanBalancesShards(t *testing.T) {
	layout, _ := planTestLayout()
	p := NewPlan(layout, 4, 7)
	if imb := p.Imbalance(); imb < 1 || imb > 1.5 {
		t.Fatalf("imbalance = %.3f, want in [1, 1.5]", imb)
	}
}

// TestPlanSingleShardDegenerates: the 1-shard plan owns everything on
// shard 0 with identity row mapping — a Router over it is a plain PS.
func TestPlanSingleShardDegenerates(t *testing.T) {
	layout, params := planTestLayout()
	p := NewPlan(layout, 1, 7)
	if p.Imbalance() != 1 {
		t.Fatalf("1-shard imbalance = %v, want 1", p.Imbalance())
	}
	for t2 := 0; t2 < layout.NumTensors(); t2++ {
		if layout.Embedding[t2] {
			for r := 0; r < layout.Rows[t2]; r++ {
				if p.ShardOfRow(t2, r) != 0 || p.LocalRow(t2, r) != r {
					t.Fatalf("1-shard plan moved row %d of tensor %d", r, t2)
				}
			}
		} else if p.ShardOfTensor(t2) != 0 {
			t.Fatalf("1-shard plan moved dense tensor %d", t2)
		}
	}
	sub := p.ShardLayout(0)
	if !reflect.DeepEqual(sub, layout) {
		t.Fatalf("1-shard sub-layout differs from the global layout:\n%+v\n%+v", sub, layout)
	}
	sp := p.ShardParams(params, 0)
	for i := range params {
		if !reflect.DeepEqual(sp[i].Data, params[i].Data) {
			t.Fatalf("1-shard params differ at tensor %d", i)
		}
	}
}

// TestPlanMostRowsStayPutWhenScaling: rendezvous hashing's point is
// minimal movement — growing 3 shards to 4 should move roughly 1/4 of
// the rows, not reshuffle everything like modulo would.
func TestPlanMostRowsStayPutWhenScaling(t *testing.T) {
	layout, _ := planTestLayout()
	p3 := NewPlan(layout, 3, 7)
	p4 := NewPlan(layout, 4, 7)
	moved, total := 0, 0
	for t2 := 0; t2 < layout.NumTensors(); t2++ {
		if !layout.Embedding[t2] {
			continue
		}
		for r := 0; r < layout.Rows[t2]; r++ {
			total++
			if p3.ShardOfRow(t2, r) != p4.ShardOfRow(t2, r) {
				moved++
			}
		}
	}
	if frac := float64(moved) / float64(total); frac > 0.45 {
		t.Fatalf("scaling 3->4 shards moved %.0f%% of rows, want ~25%%", 100*frac)
	}
}

func TestShardCheckpointPath(t *testing.T) {
	if got := ShardCheckpointPath("/tmp/ps.ckpt", 2, 4); got != "/tmp/ps.ckpt.shard2of4" {
		t.Fatalf("ShardCheckpointPath = %q", got)
	}
}
