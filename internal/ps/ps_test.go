package ps

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"testing"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/synth"
)

func testDataset(t testing.TB) *data.Dataset {
	t.Helper()
	return synth.Generate(synth.Config{
		Name: "ps-test", Seed: 51, ConflictStrength: 0.8,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 500, CTRRatio: 0.3},
			{Name: "b", Samples: 400, CTRRatio: 0.4},
			{Name: "c", Samples: 300, CTRRatio: 0.25},
			{Name: "d", Samples: 200, CTRRatio: 0.35},
		},
	})
}

func replicaFactory(ds *data.Dataset) func() models.Model {
	return func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{16, 8}, Seed: 5})
	}
}

func TestLayoutOf(t *testing.T) {
	params := []*autograd.Tensor{
		autograd.ParamZeros(500, 4), // embedding table for field 0
		autograd.ParamZeros(96, 8),  // wide dense matrix — must stay dense
		autograd.ParamZeros(1, 8),   // dense
	}
	l := LayoutOf(params, map[int]int{0: 0})
	if !l.Embedding[0] || l.Embedding[1] || l.Embedding[2] {
		t.Fatalf("embedding flags = %v", l.Embedding)
	}
	if l.Field[0] != 0 || l.Field[1] != -1 || l.Field[2] != -1 {
		t.Fatalf("field mapping = %v", l.Field)
	}
	if l.NumTensors() != 3 || l.Rows[0] != 500 || l.Cols[0] != 4 {
		t.Fatal("layout shapes wrong")
	}
	if err := l.Validate(6); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
}

func TestLayoutValidateCatchesUnreachableTensors(t *testing.T) {
	params := []*autograd.Tensor{autograd.ParamZeros(100, 4)}
	l := LayoutOf(params, map[int]int{0: 0})

	// Embedding without a field is reachable by neither sync path.
	broken := l
	broken.Field = []int{-1}
	if err := broken.Validate(-1); err == nil {
		t.Fatal("embedding tensor without a field passed validation")
	}

	// A field beyond the schema cannot be resolved by workers.
	if err := l.Validate(0); err == nil {
		t.Fatal("out-of-schema field passed validation")
	}

	// Dense tensors must not name a field.
	dbl := LayoutOf(params, nil)
	dbl.Field = []int{2}
	if err := dbl.Validate(-1); err == nil {
		t.Fatal("dense tensor with a field passed validation")
	}
}

// TestLayoutValidateCatchesMalformedLayouts covers the structural error
// paths: slices of mismatched length (a hand-built layout that skipped a
// field) and degenerate tensor shapes. Both would otherwise surface as
// index panics deep inside sync or partitioning code.
func TestLayoutValidateCatchesMalformedLayouts(t *testing.T) {
	params := []*autograd.Tensor{
		autograd.ParamZeros(100, 4),
		autograd.ParamZeros(8, 8),
	}
	good := LayoutOf(params, map[int]int{0: 0})
	if err := good.Validate(-1); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}

	short := good
	short.Field = good.Field[:1]
	if err := short.Validate(-1); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("short Field slice not rejected as misaligned: %v", err)
	}

	short = good
	short.Embedding = append(append([]bool(nil), good.Embedding...), true)
	if err := short.Validate(-1); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("long Embedding slice not rejected as misaligned: %v", err)
	}

	short = good
	short.Cols = good.Cols[:1]
	if err := short.Validate(-1); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("short Cols slice not rejected as misaligned: %v", err)
	}

	for _, shape := range []struct{ rows, cols int }{{0, 4}, {4, 0}, {-1, 4}} {
		degenerate := Layout{
			Rows: []int{shape.rows}, Cols: []int{shape.cols},
			Embedding: []bool{false}, Field: []int{-1},
		}
		if err := degenerate.Validate(-1); err == nil || !strings.Contains(err.Error(), "degenerate") {
			t.Fatalf("%dx%d tensor not rejected as degenerate: %v", shape.rows, shape.cols, err)
		}
	}
}

func TestServerPullDenseExcludesEmbeddings(t *testing.T) {
	params := []*autograd.Tensor{
		autograd.ParamZeros(500, 4),
		autograd.Param(2, 2, []float64{1, 2, 3, 4}),
	}
	s := NewServer(params, map[int]int{0: 0}, 2, "sgd", 1)
	dense := s.PullDense(context.Background())
	if _, has := dense[0]; has {
		t.Fatal("embedding tensor returned by PullDense")
	}
	if dense[1][3] != 4 {
		t.Fatal("dense values wrong")
	}
}

func TestServerPullRowsLatestValues(t *testing.T) {
	params := []*autograd.Tensor{autograd.ParamZeros(100, 2)}
	s := NewServer(params, map[int]int{0: 0}, 1, "sgd", 1)
	s.PushDelta(context.Background(), Delta{
		Rows:      map[int][]int{0: {7}},
		RowDeltas: map[int][][]float64{0: {{1.5, -2}}},
	})
	rows := s.PullRows(context.Background(), 0, []int{7, 8})
	if rows[0][0] != 1.5 || rows[0][1] != -2 {
		t.Fatalf("row 7 = %v, want [1.5 -2]", rows[0])
	}
	if rows[1][0] != 0 {
		t.Fatal("row 8 should be untouched")
	}
}

func TestServerPullRowsOnDensePanics(t *testing.T) {
	s := NewServer([]*autograd.Tensor{autograd.ParamZeros(2, 2)}, nil, 1, "sgd", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.PullRows(context.Background(), 0, []int{0})
}

func TestServerOuterUpdateAppliesBeta(t *testing.T) {
	params := []*autograd.Tensor{autograd.Param(1, 2, []float64{0, 0})}
	s := NewServer(params, nil, 1, "sgd", 0.5)
	s.PushDelta(context.Background(), Delta{Dense: map[int][]float64{0: {2, -4}}})
	snap := s.Snapshot()
	// Eq. 3: θ += β * delta = 0.5 * [2, -4].
	if snap[0][0] != 1 || snap[0][1] != -2 {
		t.Fatalf("snapshot = %v, want [1 -2]", snap[0])
	}
}

func TestServerAdagradStatePersistsAcrossPushes(t *testing.T) {
	params := []*autograd.Tensor{autograd.Param(1, 1, []float64{0})}
	s := NewServer(params, nil, 1, "adagrad", 1)
	s.PushDelta(context.Background(), Delta{Dense: map[int][]float64{0: {1}}})
	v1 := s.Snapshot()[0][0]
	s.PushDelta(context.Background(), Delta{Dense: map[int][]float64{0: {1}}})
	v2 := s.Snapshot()[0][0] - v1
	if v2 >= v1 {
		t.Fatalf("second adagrad step (%g) should be smaller than first (%g)", v2, v1)
	}
}

func TestCountersTally(t *testing.T) {
	params := []*autograd.Tensor{autograd.ParamZeros(100, 2), autograd.ParamZeros(1, 3)}
	s := NewServer(params, map[int]int{0: 0}, 1, "sgd", 1)
	s.PullDense(context.Background())
	s.PullRows(context.Background(), 0, []int{1, 2, 3})
	s.PushDelta(context.Background(), Delta{Dense: map[int][]float64{1: {0, 0, 0}}})
	c := s.Counters()
	if c.DensePulls != 1 || c.RowPulls != 3 || c.DensePushes != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.FloatsMoved != 3+6+3 {
		t.Fatalf("floats moved = %d, want 12", c.FloatsMoved)
	}
}

func TestDensePushCounterIgnoresRowOnlyAndEmptyPushes(t *testing.T) {
	params := []*autograd.Tensor{autograd.ParamZeros(100, 2), autograd.ParamZeros(1, 3)}
	s := NewServer(params, map[int]int{0: 0}, 1, "sgd", 1)

	// A push carrying only embedding rows must not count as a dense push.
	s.PushDelta(context.Background(), Delta{
		Rows:      map[int][]int{0: {5}},
		RowDeltas: map[int][][]float64{0: {{1, 1}}},
	})
	// Neither must an empty push.
	s.PushDelta(context.Background(), Delta{})
	if c := s.Counters(); c.DensePushes != 0 {
		t.Fatalf("row-only/empty pushes counted as dense: %+v", c)
	}

	s.PushDelta(context.Background(), Delta{Dense: map[int][]float64{1: {0, 0, 0}}})
	if c := s.Counters(); c.DensePushes != 1 || c.RowPushes != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestDistributedTrainingLearns(t *testing.T) {
	ds := testDataset(t)
	res := Train(replicaFactory(ds), ds, Options{
		Workers: 2, Epochs: 20, Seed: 9, CacheEnabled: true,
	})
	auc := framework.MeanAUC(res.State, ds, data.Test)
	if auc < 0.55 {
		t.Fatalf("distributed DN test AUC = %.4f, want > 0.55", auc)
	}
	if res.Counters.DensePushes == 0 || res.Counters.RowPulls == 0 {
		t.Fatalf("no PS traffic recorded: %+v", res.Counters)
	}
}

func TestDistributedWithDRPopulatesSpecifics(t *testing.T) {
	ds := testDataset(t)
	res := Train(replicaFactory(ds), ds, Options{
		Workers: 2, Epochs: 3, Seed: 9, CacheEnabled: true, UseDR: true,
	})
	if len(res.State.Specific) != ds.NumDomains() {
		t.Fatalf("specifics = %d, want %d", len(res.State.Specific), ds.NumDomains())
	}
	var moved int
	for _, v := range res.State.Specific {
		var norm float64
		for i := range v {
			for j := range v[i] {
				norm += v[i][j] * v[i][j]
			}
		}
		if norm > 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("DR phase left all specific parameters at zero")
	}
}

func TestCacheReducesSyncOverhead(t *testing.T) {
	ds := testDataset(t)
	opts := Options{Workers: 2, Epochs: 2, Seed: 9}

	optsOn := opts
	optsOn.CacheEnabled = true
	withCache := Train(replicaFactory(ds), ds, optsOn)

	optsOff := opts
	optsOff.CacheEnabled = false
	withoutCache := Train(replicaFactory(ds), ds, optsOff)

	on := withCache.Counters.FloatsMoved
	off := withoutCache.Counters.FloatsMoved
	t.Logf("floats moved: cache=%d naive=%d (%.1fx)", on, off, float64(off)/float64(on))
	if on >= off {
		t.Fatalf("embedding cache did not reduce traffic: %d vs %d", on, off)
	}
}

func TestWorkerCountCappedByDomains(t *testing.T) {
	ds := testDataset(t)
	res := Train(replicaFactory(ds), ds, Options{Workers: 32, Epochs: 1, Seed: 9, CacheEnabled: true})
	if res.State == nil {
		t.Fatal("training failed with more workers than domains")
	}
}

func TestConcurrentPushesAreSafe(t *testing.T) {
	params := []*autograd.Tensor{autograd.ParamZeros(200, 4), autograd.ParamZeros(4, 4)}
	s := NewServer(params, map[int]int{0: 0}, 2, "sgd", 0.1)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				s.PullDense(context.Background())
				s.PullRows(context.Background(), 0, []int{rng.Intn(200)})
				s.PushDelta(context.Background(), Delta{
					Dense:     map[int][]float64{1: make([]float64, 16)},
					Rows:      map[int][]int{0: {rng.Intn(200)}},
					RowDeltas: map[int][][]float64{0: {{0.1, 0.1, 0.1, 0.1}}},
				})
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	c := s.Counters()
	if c.DensePushes != 400 || c.RowPushes != 400 {
		t.Fatalf("lost pushes: %+v", c)
	}
}

func TestRPCTransportEndToEnd(t *testing.T) {
	ds := testDataset(t)
	factory := replicaFactory(ds)
	serving := factory()
	// Adagrad's first steps move each coordinate by the full learning
	// rate regardless of delta magnitude, so the outer rate stays at the
	// low end of the paper's industrial range [0.1, 1].
	server := NewServer(serving.Parameters(), models.EmbeddingTablesOf(serving), 2, "adagrad", 0.1)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(server, lis)

	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if client.Layout().NumTensors() != len(serving.Parameters()) {
		t.Fatal("layout mismatch over RPC")
	}

	res := TrainWithStore(factory, serving, client, client, ds, Options{
		Workers: 2, Epochs: 10, Seed: 9, CacheEnabled: true,
	})
	auc := framework.MeanAUC(res.State, ds, data.Test)
	if auc < 0.52 {
		t.Fatalf("RPC-trained AUC = %.4f, want > 0.52", auc)
	}
	if res.Counters.DensePushes == 0 {
		t.Fatal("no pushes recorded through RPC")
	}
}

func TestRPCDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error")
	}
}

// TestWideMLPSyncsAllTensors is the regression test for the silent
// desync of large dense tensors: an MLP whose first hidden layer has
// numFields x embDim >= 64 input rows (here 6 x 16 = 96) used to be
// classified as an embedding table by the old row-count heuristic,
// while the worker had no row mapping for it — so the layer was never
// pulled from nor pushed to the PS, and the serving snapshot kept its
// initial values. With the explicit embedding mask every managed tensor
// must move during training and distributed DN must track
// single-process DN within tolerance.
func TestWideMLPSyncsAllTensors(t *testing.T) {
	ds := testDataset(t)
	factory := func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 16, Hidden: []int{32, 16}, Seed: 5})
	}
	probe := factory()
	init := paramvec.Snapshot(probe.Parameters())
	layout := LayoutOf(probe.Parameters(), models.EmbeddingTablesOf(probe))

	res := Train(factory, ds, Options{Workers: 2, Epochs: 20, Seed: 9, CacheEnabled: true})

	// Every managed tensor — dense or embedding — must have moved away
	// from initialization in the PS snapshot.
	for i := range init {
		var diff float64
		for j := range init[i] {
			d := res.State.Shared[i][j] - init[i][j]
			diff += d * d
		}
		if diff == 0 {
			t.Errorf("tensor %d (%dx%d, embedding=%v) never synchronized: snapshot equals initialization",
				i, layout.Rows[i], layout.Cols[i], layout.Embedding[i])
		}
	}

	// Distributed DN must be in the same quality regime as
	// single-process DN; with the first MLP layer desynced it collapses
	// toward chance.
	single := framework.MustNew("dn").Fit(factory(), ds, framework.Config{
		Epochs: 20, BatchSize: 64, Seed: 9,
	})
	singleAUC := framework.MeanAUC(single, ds, data.Test)
	distAUC := framework.MeanAUC(res.State, ds, data.Test)
	t.Logf("wide-MLP AUC: distributed %.4f vs single-process %.4f", distAUC, singleAUC)
	if distAUC < singleAUC-0.05 {
		t.Fatalf("distributed DN diverged from single-process DN: %.4f vs %.4f", distAUC, singleAUC)
	}
}

// TestWorkerLayoutMismatchPanics ensures a store whose layout does not
// align with the replica is rejected loudly instead of desyncing.
func TestWorkerLayoutMismatchPanics(t *testing.T) {
	ds := testDataset(t)
	serving := replicaFactory(ds)()
	store := NewServer(serving.Parameters(), models.EmbeddingTablesOf(serving), 1, "sgd", 0.5)

	// A structurally different replica (wider hidden layers).
	other := models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{24, 8}, Seed: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on layout/replica mismatch")
		}
	}()
	NewWorker(0, other, ds, []int{0}, store, true)
}
