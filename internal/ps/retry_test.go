package ps

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"mamdr/internal/autograd"
	"mamdr/internal/faultinject"
)

func TestBackoffDelayDeterministicUnderSeed(t *testing.T) {
	a := &Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Seed: 42}
	b := &Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Seed: 42}
	c := &Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Seed: 43}
	var differs bool
	for attempt := 1; attempt <= 8; attempt++ {
		da, db, dc := a.Delay(attempt), b.Delay(attempt), c.Delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		if da != dc {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestBackoffDelayBoundsAndCap(t *testing.T) {
	b := &Backoff{Base: 8 * time.Millisecond, Max: 32 * time.Millisecond, Seed: 1}
	// Pre-jitter sleeps: 8ms, 16ms, 32ms, 32ms (capped), ...
	want := []time.Duration{8, 16, 32, 32, 32}
	for i, pre := range want {
		pre *= time.Millisecond
		d := b.Delay(i + 1)
		if d < pre/2 || d >= pre {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i+1, d, pre/2, pre)
		}
	}
	// A huge attempt index must not overflow into a negative shift.
	if d := b.Delay(500); d < 16*time.Millisecond || d >= 32*time.Millisecond {
		t.Fatalf("attempt 500: delay %v escaped the cap", d)
	}
}

func TestBackoffWaitAbortsOnCancelledContext(t *testing.T) {
	b := &Backoff{Base: time.Hour, Max: time.Hour, Seed: 7}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := b.Wait(ctx, 1); err == nil {
		t.Fatal("Wait on a cancelled context returned nil")
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("Wait slept %v despite cancelled context", took)
	}
}

func TestBackoffWaitAbortsMidSleep(t *testing.T) {
	b := &Backoff{Base: time.Hour, Max: time.Hour, Seed: 7}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := b.Wait(ctx, 1); err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancel mid-sleep took %v to unblock Wait", took)
	}
}

// TestConcurrentRetryingClients exercises the retry path under -race:
// several RPC clients, each with its own fault injector dropping
// connections and erroring probabilistically, hammer one server
// concurrently. Every push must land exactly once (sequence tokens make
// the retries idempotent).
func TestConcurrentRetryingClients(t *testing.T) {
	params := []*autograd.Tensor{autograd.ParamZeros(100, 4), autograd.ParamZeros(4, 4)}
	server := NewServer(params, map[int]int{0: 0}, 2, "sgd", 0.1)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go Serve(server, lis)

	const clients, pushes = 4, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(lis.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			cl.SetBackoff(Backoff{Attempts: 20, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: int64(c)})
			cl.SetInjector(faultinject.MustParse(
				"PushDelta:err@p0.2; PullDense:err@p0.2; conn:drop@5,11", int64(c)))
			ctx := context.Background()
			for i := 0; i < pushes; i++ {
				cl.PullDense(ctx)
				cl.PushDelta(ctx, Delta{
					WorkerID: c, Seq: int64(i + 1),
					Dense: map[int][]float64{1: make([]float64, 16)},
				})
			}
		}(c)
	}
	wg.Wait()

	if got := server.Counters().DensePushes; got != clients*pushes {
		t.Fatalf("server applied %d pushes, want exactly %d", got, clients*pushes)
	}
}
