package ps

import (
	"context"
	"math/rand"
	"sync"

	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/trace"
)

// Options configures distributed MAMDR training.
type Options struct {
	// Workers is the number of concurrent worker replicas (the paper
	// uses 400; benchmarks here use a handful).
	Workers int
	// Shards is the number of parameter-server shards (the paper's 40
	// parameter servers).
	Shards int
	// CacheEnabled toggles the embedding PS-Worker cache of §IV-E.
	CacheEnabled bool
	// OuterOpt/OuterLR configure the PS-side outer update (the paper's
	// industrial setup: Adagrad with lr in [0.1, 1]).
	OuterOpt string
	OuterLR  float64
	// InnerOpt/InnerLR configure worker-local inner steps (SGD 0.1 in
	// the paper's industrial setup).
	InnerOpt string
	InnerLR  float64
	// Epochs, BatchSize, MaxBatchesPerDomain bound the training loop.
	Epochs              int
	BatchSize           int
	MaxBatchesPerDomain int
	// UseDR enables the Domain Regularization phase after DN training;
	// SampleK and DRLR are Algorithm 2's k and γ.
	UseDR   bool
	SampleK int
	DRLR    float64
	Seed    int64
	// Metrics, when non-nil, mirrors PS traffic, the worker cache
	// hit/miss ratio, and the row-staleness distribution into a
	// telemetry registry (ps.NewMetrics).
	Metrics *Metrics
	// Telemetry, when non-nil, records per-domain training telemetry
	// from every worker's inner loops — the same series as
	// single-process training, tagged by worker in the event log.
	Telemetry *framework.TrainMetrics
	// Tracer, when non-nil, emits one trace per worker epoch (inner
	// steps, per-batch phases, PS pulls/pushes) and arms the flight
	// recorder for training anomalies. In-process stores share the
	// tracer between worker and server sides; over RPC the trace
	// context travels in the call arguments instead.
	Tracer *trace.Tracer
}

// WithDefaults fills zero fields with the benchmark-scale defaults.
func (o Options) WithDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.OuterOpt == "" {
		o.OuterOpt = "sgd"
	}
	if o.OuterLR == 0 {
		o.OuterLR = 0.5
	}
	if o.InnerOpt == "" {
		o.InnerOpt = "sgd"
	}
	if o.InnerLR == 0 {
		o.InnerLR = 0.1
	}
	if o.Epochs == 0 {
		o.Epochs = 10
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.SampleK == 0 {
		o.SampleK = 3
	}
	if o.DRLR == 0 {
		o.DRLR = 0.1
	}
	return o
}

// Result is the outcome of distributed training.
type Result struct {
	// State holds the trained shared/specific parameters and serves as
	// the predictor.
	State *core.State
	// Counters is the parameter-server traffic tally.
	Counters Counters
}

// Train runs distributed MAMDR: a parameter server initialized from one
// replica, Workers concurrent workers running DN inner loops over
// disjoint domain partitions with asynchronous pushes, and (optionally)
// a Domain Regularization phase for the specific parameters. replica
// must return structurally identical models (same Config including
// Seed); one replica is built per worker plus one for serving.
func Train(replica func() models.Model, ds *data.Dataset, opts Options) *Result {
	opts = opts.WithDefaults()
	serving := replica()
	// The model declares which of its tensors are embedding tables;
	// everything else synchronizes densely. No row-count guessing.
	tables := models.EmbeddingTablesOf(serving)
	server := NewServer(serving.Parameters(), tables, opts.Shards, opts.OuterOpt, opts.OuterLR)
	server.SetMetrics(opts.Metrics)
	server.SetTracer(opts.Tracer)
	return TrainWithStore(replica, serving, server, server, ds, opts)
}

// TrainWithStore is Train against an arbitrary Store (e.g. an RPC
// client); server-side counters are read from counterSrc, which may be
// nil when the caller tracks them elsewhere.
func TrainWithStore(replica func() models.Model, serving models.Model, store Store, counterSrc interface{ Counters() Counters }, ds *data.Dataset, opts Options) *Result {
	opts = opts.WithDefaults()
	if opts.Workers > ds.NumDomains() {
		opts.Workers = ds.NumDomains()
	}

	// Partition domains round-robin across workers.
	workers := make([]*Worker, opts.Workers)
	for i := range workers {
		var domains []int
		for d := i; d < ds.NumDomains(); d += opts.Workers {
			domains = append(domains, d)
		}
		w := NewWorker(i, replica(), ds, domains, store, opts.CacheEnabled)
		w.InnerOpt, w.InnerLR = opts.InnerOpt, opts.InnerLR
		w.BatchSize, w.MaxBatchesPerDomain = opts.BatchSize, opts.MaxBatchesPerDomain
		w.Metrics, w.Telemetry = opts.Metrics, opts.Telemetry
		w.Tracer = opts.Tracer
		workers[i] = w
	}

	// DN phase: every epoch all workers run their inner loops
	// concurrently and push asynchronously.
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		var wg sync.WaitGroup
		for i, w := range workers {
			wg.Add(1)
			go func(i int, w *Worker) {
				defer wg.Done()
				w.RunEpoch(rand.New(rand.NewSource(opts.Seed + int64(epoch*1000+i))))
			}(i, w)
		}
		wg.Wait()
	}

	// Assemble the serving state from the PS.
	shared := storeSnapshot(store, serving)
	st := &core.State{Model: serving, Shared: shared}
	for range ds.Domains {
		st.AddDomain()
	}

	// DR phase: each worker regularizes the specific parameters of its
	// owned domains locally (workers hold the global feature storage, so
	// helper domains may come from anywhere, as in Algorithm 2).
	if opts.UseDR {
		cfg := framework.Config{
			Epochs: 1, BatchSize: opts.BatchSize, LR: opts.InnerLR,
			InnerOpt: opts.InnerOpt, SampleK: opts.SampleK, DRLR: opts.DRLR,
			MaxBatchesPerDomain: opts.MaxBatchesPerDomain, Seed: opts.Seed,
			Telemetry: opts.Telemetry, Tracer: opts.Tracer,
		}.WithDefaults()
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i, w := range workers {
			wg.Add(1)
			go func(i int, w *Worker) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed + 777 + int64(i)))
				local := &core.State{Model: w.Model, Shared: shared.Clone()}
				for range ds.Domains {
					local.AddDomain()
				}
				for _, d := range w.Domains {
					core.DomainRegularization(local, ds, d, cfg, rng)
					mu.Lock()
					st.Specific[d] = local.Specific[d]
					mu.Unlock()
				}
			}(i, w)
		}
		wg.Wait()
	}

	res := &Result{State: st}
	if counterSrc != nil {
		res.Counters = counterSrc.Counters()
	}
	return res
}

// storeSnapshot reads the full parameter state (dense + embeddings) from
// the store, aligned with the serving model's parameters.
func storeSnapshot(store Store, serving models.Model) paramvec.Vector {
	if s, ok := store.(*Server); ok {
		return s.Snapshot()
	}
	ctx := context.Background()
	layout := store.Layout()
	params := serving.Parameters()
	out := paramvec.Snapshot(params)
	dense := store.PullDense(ctx)
	for t, vals := range dense {
		copy(out[t], vals)
	}
	for t := range params {
		if !layout.Embedding[t] {
			continue
		}
		rows := make([]int, layout.Rows[t])
		for r := range rows {
			rows[r] = r
		}
		vals := store.PullRows(ctx, t, rows)
		cols := layout.Cols[t]
		for r, v := range vals {
			copy(out[t][r*cols:(r+1)*cols], v)
		}
	}
	return out
}
