package ps

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mamdr/internal/core"
	"mamdr/internal/data"
	"mamdr/internal/framework"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/trace"
)

// Options configures distributed MAMDR training.
type Options struct {
	// Workers is the number of concurrent worker replicas (the paper
	// uses 400; benchmarks here use a handful).
	Workers int
	// Shards is the number of parameter-server shards (the paper's 40
	// parameter servers).
	Shards int
	// CacheEnabled toggles the embedding PS-Worker cache of §IV-E.
	CacheEnabled bool
	// OuterOpt/OuterLR configure the PS-side outer update (the paper's
	// industrial setup: Adagrad with lr in [0.1, 1]).
	OuterOpt string
	OuterLR  float64
	// InnerOpt/InnerLR configure worker-local inner steps (SGD 0.1 in
	// the paper's industrial setup).
	InnerOpt string
	InnerLR  float64
	// Epochs, BatchSize, MaxBatchesPerDomain bound the training loop.
	Epochs              int
	BatchSize           int
	MaxBatchesPerDomain int
	// UseDR enables the Domain Regularization phase after DN training;
	// SampleK and DRLR are Algorithm 2's k and γ.
	UseDR   bool
	SampleK int
	DRLR    float64
	Seed    int64

	// SyncPush makes distributed training bit-reproducible: workers run
	// their inner loops concurrently against the epoch-start state
	// (pushes deferred), then the trainer applies every worker's delta
	// sequentially in worker-id order. The schedule-independent apply
	// order is what the chaos determinism tests rely on to compare a
	// faulty run against a clean one float for float. Requires
	// CacheEnabled (deferred pushes need the cache protocol).
	SyncPush bool

	// WrapStore, when non-nil, wraps each worker's view of the store —
	// the hook chaos tests use to give every worker its own seeded
	// fault-injecting transport. workerID is the worker's index.
	WrapStore func(workerID int, base Store) Store

	// HeartbeatTimeout arms the supervisor's watchdog: a worker that
	// completes no mini-batch for this long is cancelled, declared
	// dead, and its domains move to the survivors. Zero disables the
	// watchdog (worker panics are still supervised and redistributed).
	HeartbeatTimeout time.Duration

	// CheckpointPath, when set (with Train), configures the in-process
	// server's checkpoint location. CheckpointEvery writes a server
	// checkpoint every N completed epochs (0 disables; any value
	// requires the store to implement CheckpointStore). Resume restores
	// the store's last checkpoint before training and skips the epochs
	// it already covers.
	CheckpointPath  string
	CheckpointEvery int
	Resume          bool

	// Metrics, when non-nil, mirrors PS traffic, the worker cache
	// hit/miss ratio, and the row-staleness distribution into a
	// telemetry registry (ps.NewMetrics).
	Metrics *Metrics
	// Telemetry, when non-nil, records per-domain training telemetry
	// from every worker's inner loops — the same series as
	// single-process training, tagged by worker in the event log.
	Telemetry *framework.TrainMetrics
	// Tracer, when non-nil, emits one trace per worker epoch (inner
	// steps, per-batch phases, PS pulls/pushes) and arms the flight
	// recorder for training anomalies. In-process stores share the
	// tracer between worker and server sides; over RPC the trace
	// context travels in the call arguments instead.
	Tracer *trace.Tracer
}

// WithDefaults fills zero fields with the benchmark-scale defaults.
func (o Options) WithDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.OuterOpt == "" {
		o.OuterOpt = "sgd"
	}
	if o.OuterLR == 0 {
		o.OuterLR = 0.5
	}
	if o.InnerOpt == "" {
		o.InnerOpt = "sgd"
	}
	if o.InnerLR == 0 {
		o.InnerLR = 0.1
	}
	if o.Epochs == 0 {
		o.Epochs = 10
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.SampleK == 0 {
		o.SampleK = 3
	}
	if o.DRLR == 0 {
		o.DRLR = 0.1
	}
	return o
}

// Result is the outcome of distributed training.
type Result struct {
	// State holds the trained shared/specific parameters and serves as
	// the predictor.
	State *core.State
	// Counters is the parameter-server traffic tally.
	Counters Counters
	// WorkerDeaths is how many workers the supervisor declared dead and
	// redistributed during the run.
	WorkerDeaths int
	// ResumedFrom is the completed-epoch cursor the run restored from
	// (-1 when it started fresh).
	ResumedFrom int
}

// Train runs distributed MAMDR: a parameter server initialized from one
// replica, Workers concurrent workers running DN inner loops over
// disjoint domain partitions with asynchronous pushes, and (optionally)
// a Domain Regularization phase for the specific parameters. replica
// must return structurally identical models (same Config including
// Seed); one replica is built per worker plus one for serving.
func Train(replica func() models.Model, ds *data.Dataset, opts Options) *Result {
	opts = opts.WithDefaults()
	serving := replica()
	// The model declares which of its tensors are embedding tables;
	// everything else synchronizes densely. No row-count guessing.
	tables := models.EmbeddingTablesOf(serving)
	server := NewServer(serving.Parameters(), tables, opts.Shards, opts.OuterOpt, opts.OuterLR)
	server.SetMetrics(opts.Metrics)
	server.SetTracer(opts.Tracer)
	if opts.CheckpointPath != "" {
		server.SetCheckpointPath(opts.CheckpointPath)
	}
	return TrainWithStore(replica, serving, server, server, ds, opts)
}

// supervisedWorker is the trainer's view of one worker: its liveness
// clock, its supervisor-controlled context, and whether it has been
// declared dead.
type supervisedWorker struct {
	w        *Worker
	dead     bool
	lastBeat atomic.Int64 // UnixNano of the last completed mini-batch
}

// death records one worker's demise for post-epoch processing.
type death struct {
	worker int
	cause  any
}

// TrainWithStore is Train against an arbitrary Store (e.g. an RPC
// client); server-side counters are read from counterSrc, which may be
// nil when the caller tracks them elsewhere.
//
// Fault tolerance: each epoch runs under supervision — a worker that
// panics (a push that exhausted its retries, an injected fault, a
// missed-heartbeat cancellation) is recovered, counted in telemetry,
// dumped to the flight recorder, and its domains are redistributed
// round-robin to the survivors for the remaining epochs. Training only
// fails outright when every worker is dead. With CheckpointEvery set it
// checkpoints the store at epoch boundaries, and with Resume it picks
// up from the store's last checkpoint.
func TrainWithStore(replica func() models.Model, serving models.Model, store Store, counterSrc interface{ Counters() Counters }, ds *data.Dataset, opts Options) *Result {
	opts = opts.WithDefaults()
	if opts.Workers > ds.NumDomains() {
		opts.Workers = ds.NumDomains()
	}
	if opts.SyncPush && !opts.CacheEnabled {
		panic("ps: SyncPush requires CacheEnabled (deferred pushes ride the cache protocol)")
	}

	// Partition domains round-robin across workers.
	sup := make([]*supervisedWorker, opts.Workers)
	for i := range sup {
		var domains []int
		for d := i; d < ds.NumDomains(); d += opts.Workers {
			domains = append(domains, d)
		}
		ws := store
		if opts.WrapStore != nil {
			ws = opts.WrapStore(i, store)
		}
		w := NewWorker(i, replica(), ds, domains, ws, opts.CacheEnabled)
		w.InnerOpt, w.InnerLR = opts.InnerOpt, opts.InnerLR
		w.BatchSize, w.MaxBatchesPerDomain = opts.BatchSize, opts.MaxBatchesPerDomain
		w.Metrics, w.Telemetry = opts.Metrics, opts.Telemetry
		w.Tracer = opts.Tracer
		s := &supervisedWorker{w: w}
		w.OnBeat = func() { s.lastBeat.Store(time.Now().UnixNano()) }
		sup[i] = s
	}

	res := &Result{ResumedFrom: -1}

	// Resume: restore the store's last checkpoint and skip the epochs
	// it covers. A missing checkpoint (epoch -1) starts fresh; a
	// corrupt one fails loudly — training from silently wrong
	// parameters is worse than not training.
	startEpoch := 0
	cs, hasCkpt := store.(CheckpointStore)
	if opts.Resume {
		if !hasCkpt {
			panic("ps: Resume requires a store that implements CheckpointStore")
		}
		epoch, err := cs.LoadCheckpoint()
		if err != nil {
			panic(fmt.Sprintf("ps: resume: %v", err))
		}
		if epoch > 0 {
			startEpoch = epoch
			res.ResumedFrom = epoch
		}
	}

	// DN phase: every epoch all live workers run their inner loops
	// concurrently; pushes are asynchronous, or — with SyncPush —
	// deferred and applied serially in worker-id order.
	for epoch := startEpoch; epoch < opts.Epochs; epoch++ {
		deaths := runSupervisedEpoch(sup, epoch, opts)
		for _, d := range deaths {
			markDead(sup, d, opts, res)
		}
		if live(sup) == 0 {
			panic(fmt.Sprintf("ps: all %d workers dead at epoch %d; cannot continue", opts.Workers, epoch))
		}
		if opts.CheckpointEvery > 0 && (epoch+1)%opts.CheckpointEvery == 0 {
			if !hasCkpt {
				panic("ps: CheckpointEvery requires a store that implements CheckpointStore")
			}
			if err := cs.SaveCheckpoint(epoch + 1); err != nil {
				panic(fmt.Sprintf("ps: checkpoint after epoch %d: %v", epoch, err))
			}
		}
	}

	// Assemble the serving state from the PS.
	shared := storeSnapshot(store, serving)
	st := &core.State{Model: serving, Shared: shared}
	for range ds.Domains {
		st.AddDomain()
	}

	// DR phase: each live worker regularizes the specific parameters of
	// its owned domains locally (workers hold the global feature
	// storage, so helper domains may come from anywhere, as in
	// Algorithm 2). Redistribution keeps every domain owned by some
	// live worker, so coverage survives worker deaths.
	if opts.UseDR {
		cfg := framework.Config{
			Epochs: 1, BatchSize: opts.BatchSize, LR: opts.InnerLR,
			InnerOpt: opts.InnerOpt, SampleK: opts.SampleK, DRLR: opts.DRLR,
			MaxBatchesPerDomain: opts.MaxBatchesPerDomain, Seed: opts.Seed,
			Telemetry: opts.Telemetry, Tracer: opts.Tracer,
		}.WithDefaults()
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i, s := range sup {
			if s.dead {
				continue
			}
			wg.Add(1)
			go func(i int, w *Worker) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed + 777 + int64(i)))
				local := &core.State{Model: w.Model, Shared: shared.Clone()}
				for range ds.Domains {
					local.AddDomain()
				}
				for _, d := range w.Domains {
					core.DomainRegularization(local, ds, d, cfg, rng)
					mu.Lock()
					st.Specific[d] = local.Specific[d]
					mu.Unlock()
				}
			}(i, s.w)
		}
		wg.Wait()
	}

	res.State = st
	if counterSrc != nil {
		res.Counters = counterSrc.Counters()
	}
	return res
}

// runSupervisedEpoch runs one epoch across the live workers and returns
// the workers that died doing it. Each worker gets a cancellable
// context; with a heartbeat timeout armed, a watchdog cancels workers
// that stop completing batches, and the worker's next batch boundary
// turns the cancellation into a recovered *WorkerAbort.
func runSupervisedEpoch(sup []*supervisedWorker, epoch int, opts Options) []death {
	var (
		mu     sync.Mutex
		deaths []death
		wg     sync.WaitGroup
	)
	watchdogDone := make(chan struct{})
	cancels := make([]context.CancelFunc, len(sup))

	now := time.Now().UnixNano()
	for i, s := range sup {
		if s.dead {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		s.lastBeat.Store(now)
		wg.Add(1)
		go func(i int, s *supervisedWorker) {
			defer wg.Done()
			defer cancel()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					deaths = append(deaths, death{worker: i, cause: r})
					mu.Unlock()
				}
			}()
			rng := rand.New(rand.NewSource(opts.Seed + int64(epoch*1000+i)))
			if opts.SyncPush {
				s.w.TrainEpoch(ctx, rng)
			} else {
				s.w.RunEpochCtx(ctx, rng)
			}
		}(i, s)
	}

	// The watchdog must be fully stopped — not just signalled — before
	// this function returns: the caller's markDead writes the s.dead
	// flags the watchdog reads.
	var watchdogWG sync.WaitGroup
	if opts.HeartbeatTimeout > 0 {
		watchdogWG.Add(1)
		go func() {
			defer watchdogWG.Done()
			tick := time.NewTicker(opts.HeartbeatTimeout / 4)
			defer tick.Stop()
			for {
				select {
				case <-watchdogDone:
					return
				case <-tick.C:
					deadline := time.Now().Add(-opts.HeartbeatTimeout).UnixNano()
					for i, s := range sup {
						if cancels[i] != nil && !s.dead && s.lastBeat.Load() < deadline {
							cancels[i]()
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(watchdogDone)
	watchdogWG.Wait()

	// Deterministic mode: apply the epoch's deltas serially in
	// worker-id order. A failed push kills its worker here, exactly as
	// a failed async push would.
	if opts.SyncPush {
		died := map[int]bool{}
		for _, d := range deaths {
			died[d.worker] = true
		}
		for i, s := range sup {
			if s.dead || died[i] {
				continue
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						deaths = append(deaths, death{worker: i, cause: r})
					}
				}()
				s.w.PushEpoch(context.Background())
			}()
		}
	}
	return deaths
}

// markDead declares worker d.worker dead: counts it, dumps the flight
// recorder with the cause (distinguishing supervisor aborts from
// organic panics), and hands its domains round-robin to the survivors
// for the remaining epochs.
func markDead(sup []*supervisedWorker, d death, opts Options, res *Result) {
	s := sup[d.worker]
	if s.dead {
		return
	}
	s.dead = true
	res.WorkerDeaths++
	opts.Metrics.observeWorkerDeath()

	kind := "panic"
	if _, ok := d.cause.(*WorkerAbort); ok {
		kind = "abort"
	}
	opts.Tracer.Flight().Trigger("worker_death", map[string]any{
		"worker": d.worker,
		"kind":   kind,
		"cause":  fmt.Sprint(d.cause),
	})

	var survivors []*supervisedWorker
	for _, o := range sup {
		if !o.dead {
			survivors = append(survivors, o)
		}
	}
	if len(survivors) == 0 {
		return // the epoch loop panics on a fully dead fleet
	}
	for n, dom := range s.w.Domains {
		o := survivors[n%len(survivors)]
		o.w.Domains = append(o.w.Domains, dom)
	}
	s.w.Domains = nil
}

// live counts workers not declared dead.
func live(sup []*supervisedWorker) int {
	n := 0
	for _, s := range sup {
		if !s.dead {
			n++
		}
	}
	return n
}

// Snapshotter is the optional fast path for reading a store's full
// state without going through the counted pull operations: the
// in-process Server and the cluster router both implement it, so
// snapshotting for evaluation never skews the synchronization-overhead
// counters.
type Snapshotter interface {
	Snapshot() paramvec.Vector
}

// storeSnapshot reads the full parameter state (dense + embeddings) from
// the store, aligned with the serving model's parameters.
func storeSnapshot(store Store, serving models.Model) paramvec.Vector {
	if s, ok := store.(Snapshotter); ok {
		return s.Snapshot()
	}
	ctx := context.Background()
	layout := store.Layout()
	params := serving.Parameters()
	out := paramvec.Snapshot(params)
	dense := store.PullDense(ctx)
	for t, vals := range dense {
		copy(out[t], vals)
	}
	for t := range params {
		if !layout.Embedding[t] {
			continue
		}
		rows := make([]int, layout.Rows[t])
		for r := range rows {
			rows[r] = r
		}
		vals := store.PullRows(ctx, t, rows)
		cols := layout.Cols[t]
		for r, v := range vals {
			copy(out[t][r*cols:(r+1)*cols], v)
		}
	}
	return out
}
