package autograd

import (
	"math/rand"
	"testing"
)

func benchTensors(rows, cols int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(1))
	return ParamRand(rows, cols, 1, rng), ParamRand(cols, rows, 1, rng)
}

func BenchmarkMatMul64x64(b *testing.B) {
	x, y := benchTensors(64, 64)
	xd, yd := x.Detach(), y.Detach()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(xd, yd)
	}
}

func BenchmarkMatMulBackward64x64(b *testing.B) {
	x, y := benchTensors(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.ZeroGrad()
		y.ZeroGrad()
		Sum(MatMul(x, y)).Backward()
	}
}

func BenchmarkGather(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	table := ParamRand(10000, 16, 1, rng)
	idx := make([]int, 256)
	for i := range idx {
		idx[i] = rng.Intn(10000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table.ZeroGrad()
		Sum(Gather(table, idx)).Backward()
	}
}

func BenchmarkBCEWithLogits(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	logits := ParamRand(1024, 1, 2, rng)
	labels := make([]float64, 1024)
	for i := range labels {
		labels[i] = float64(rng.Intn(2))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		logits.ZeroGrad()
		BCEWithLogits(logits, labels).Backward()
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := ParamRand(256, 32, 1, rng).Detach()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(x)
	}
}

func BenchmarkFMSecondOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := ParamRand(256, 6*16, 1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.ZeroGrad()
		Sum(FMSecondOrder(x, 6, 16)).Backward()
	}
}

func BenchmarkMatMul256x256(b *testing.B) {
	x, y := benchTensors(256, 256)
	xd, yd := x.Detach(), y.Detach()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(xd, yd).Release()
	}
}

func BenchmarkDenseActFused(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := ParamRand(256, 64, 1, rng)
	w := ParamXavier(64, 64, rng)
	bias := ParamRand(1, 64, 0.5, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.ZeroGrad()
		w.ZeroGrad()
		bias.ZeroGrad()
		loss := Sum(DenseAct(x, w, bias, ActReLU, 0.01))
		loss.Backward()
		loss.Release()
	}
}

func BenchmarkDenseActComposed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := ParamRand(256, 64, 1, rng)
	w := ParamXavier(64, 64, rng)
	bias := ParamRand(1, 64, 0.5, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.ZeroGrad()
		w.ZeroGrad()
		bias.ZeroGrad()
		loss := Sum(ReLU(AddRowVector(MatMul(x, w), bias)))
		loss.Backward()
		loss.Release()
	}
}

// BenchmarkTrainStepArena measures a full MLP-shaped step with Release
// recycling op buffers — the steady state of the training hot loop,
// where the arena should hold per-step allocations near zero.
func BenchmarkTrainStepArena(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := ParamRand(128, 32, 1, rng).Detach()
	w1 := ParamXavier(32, 64, rng)
	b1 := ParamRand(1, 64, 0.5, rng)
	w2 := ParamXavier(64, 1, rng)
	b2 := ParamRand(1, 1, 0.5, rng)
	labels := make([]float64, 128)
	for i := range labels {
		labels[i] = float64(rng.Intn(2))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range []*Tensor{w1, b1, w2, b2} {
			p.ZeroGrad()
		}
		h := DenseAct(x, w1, b1, ActReLU, 0.01)
		logits := DenseAct(h, w2, b2, ActIdentity, 0)
		loss := BCEWithLogits(logits, labels)
		loss.Backward()
		loss.Release()
	}
}
