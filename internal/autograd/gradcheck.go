package autograd

import (
	"fmt"
	"math"
)

// CheckGradients verifies analytic gradients against central finite
// differences. f must rebuild the computation graph from the current
// values of params and return the scalar loss tensor. Each parameter
// entry is perturbed by eps; the analytic gradient from a single
// backward pass must match (loss(+eps) - loss(-eps)) / (2 eps) within
// tol (relative where gradients are large, absolute near zero).
//
// It returns the first discrepancy found, or nil if all entries match.
// This is the test harness used to validate every op and model in the
// repository.
func CheckGradients(f func() *Tensor, params []*Tensor, eps, tol float64) error {
	// Analytic pass.
	for _, p := range params {
		p.SetRequiresGrad(true)
		p.ZeroGrad()
	}
	loss := f()
	loss.Backward()
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad...)
	}

	for pi, p := range params {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			up := f().Item()
			p.Data[i] = orig - eps
			down := f().Item()
			p.Data[i] = orig

			numeric := (up - down) / (2 * eps)
			got := analytic[pi][i]
			denom := math.Max(1, math.Max(math.Abs(numeric), math.Abs(got)))
			if math.Abs(numeric-got)/denom > tol {
				return fmt.Errorf("param %d entry %d: analytic %g vs numeric %g", pi, i, got, numeric)
			}
		}
	}
	return nil
}
