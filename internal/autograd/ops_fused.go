package autograd

import (
	"fmt"

	"mamdr/internal/autograd/kernels"
)

// Act selects the activation fused into DenseAct. The values alias the
// kernels package so nn can stay on the autograd API alone.
type Act = kernels.Act

// Fused activation kinds.
const (
	ActIdentity = kernels.ActIdentity
	ActReLU     = kernels.ActReLU
	ActSigmoid  = kernels.ActSigmoid
	ActTanh     = kernels.ActTanh
	ActLeaky    = kernels.ActLeakyReLU
)

// DenseAct computes act(x·w + bias) — the dense-layer forward — as one
// fused kernel pass instead of three ops and three intermediate
// tensors. bias is a 1xN row or nil. slope is the LeakyReLU slope,
// ignored by the other activations.
//
// The fused pass is bit-identical to the composed
// act(AddRowVector(MatMul(x, w), bias)) in both directions: the matmul
// accumulates in the same order, the bias lands after the full
// reduction, the activation uses the same expressions, and the
// backward products run the same kernels on the activation-masked
// upstream gradient.
func DenseAct(x, w, bias *Tensor, act Act, slope float64) *Tensor {
	if x.Cols != w.Rows {
		panic(fmt.Sprintf("autograd: DenseAct %dx%d x %dx%d", x.Rows, x.Cols, w.Rows, w.Cols))
	}
	if bias != nil && (bias.Rows != 1 || bias.Cols != w.Cols) {
		panic(fmt.Sprintf("autograd: DenseAct bias %dx%d for %d outputs", bias.Rows, bias.Cols, w.Cols))
	}
	m, k, n := x.Rows, x.Cols, w.Cols
	var biasData []float64
	inputs := []*Tensor{x, w}
	if bias != nil {
		biasData = bias.Data
		inputs = append(inputs, bias)
	}
	data := alloc(m * n)
	kernels.Default().DenseForward(data, x.Data, w.Data, biasData, m, k, n, act, slope)
	out := newResult(m, n, data, nil, inputs...)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		// gpre = dOut masked/scaled by act'(out): the gradient at the
		// pre-activation, recovered from the output alone.
		gpre := kernels.Get(m * n)
		kernels.ActGradTo(gpre, out.Data, out.Grad, act, slope)
		if bias != nil && bias.Grad != nil {
			kernels.ColSumAdd(bias.Grad, gpre, m, n)
		}
		be := kernels.Default()
		if x.Grad != nil {
			be.GemmABtAdd(x.Grad, gpre, w.Data, m, n, k)
		}
		if w.Grad != nil {
			be.GemmAtBAdd(w.Grad, x.Data, gpre, m, k, n)
		}
		kernels.Put(gpre)
	}
	return out
}
