package autograd

import "fmt"

// Add returns the elementwise sum a + b. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] + b.Data[i]
	}
	out := newResult(a.Rows, a.Cols, data, nil, a, b)
	if out.backward == nil && out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
		if b.Grad != nil {
			for i, g := range out.Grad {
				b.Grad[i] += g
			}
		}
	}
	return out
}

// Sub returns the elementwise difference a - b. Shapes must match.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] - b.Data[i]
	}
	out := newResult(a.Rows, a.Cols, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
		if b.Grad != nil {
			for i, g := range out.Grad {
				b.Grad[i] -= g
			}
		}
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b. Shapes must match.
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] * b.Data[i]
	}
	out := newResult(a.Rows, a.Cols, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g * b.Data[i]
			}
		}
		if b.Grad != nil {
			for i, g := range out.Grad {
				b.Grad[i] += g * a.Data[i]
			}
		}
	}
	return out
}

// Scale returns s * a for a scalar constant s.
func Scale(a *Tensor, s float64) *Tensor {
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] * s
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g * s
			}
		}
	}
	return out
}

// AddScalar returns a + s elementwise for a scalar constant s.
func AddScalar(a *Tensor, s float64) *Tensor {
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] + s
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// MatMul returns the matrix product a x b, where a is MxK and b is KxN.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("autograd: MatMul %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	data := make([]float64, m*n)
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		or := data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			br := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				or[j] += av * br[j]
			}
		}
	}
	out := newResult(m, n, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		// dA = dOut x B^T
		if a.Grad != nil {
			for i := 0; i < m; i++ {
				gr := out.Grad[i*n : (i+1)*n]
				agr := a.Grad[i*k : (i+1)*k]
				for p := 0; p < k; p++ {
					br := b.Data[p*n : (p+1)*n]
					var s float64
					for j := 0; j < n; j++ {
						s += gr[j] * br[j]
					}
					agr[p] += s
				}
			}
		}
		// dB = A^T x dOut
		if b.Grad != nil {
			for i := 0; i < m; i++ {
				ar := a.Data[i*k : (i+1)*k]
				gr := out.Grad[i*n : (i+1)*n]
				for p := 0; p < k; p++ {
					av := ar[p]
					if av == 0 {
						continue
					}
					bgr := b.Grad[p*n : (p+1)*n]
					for j := 0; j < n; j++ {
						bgr[j] += av * gr[j]
					}
				}
			}
		}
	}
	return out
}

// AddRowVector adds a 1xN bias row b to every row of the MxN tensor a.
func AddRowVector(a, b *Tensor) *Tensor {
	if b.Rows != 1 || b.Cols != a.Cols {
		panic(fmt.Sprintf("autograd: AddRowVector %dx%d + %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	data := make([]float64, len(a.Data))
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			data[i*a.Cols+j] = a.Data[i*a.Cols+j] + b.Data[j]
		}
	}
	out := newResult(a.Rows, a.Cols, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
		if b.Grad != nil {
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < a.Cols; j++ {
					b.Grad[j] += out.Grad[i*a.Cols+j]
				}
			}
		}
	}
	return out
}

// MulColBroadcast multiplies each row of the MxN tensor a by the matching
// entry of the Mx1 column c: out[i][j] = a[i][j] * c[i][0].
func MulColBroadcast(a, c *Tensor) *Tensor {
	if c.Cols != 1 || c.Rows != a.Rows {
		panic(fmt.Sprintf("autograd: MulColBroadcast %dx%d * %dx%d", a.Rows, a.Cols, c.Rows, c.Cols))
	}
	data := make([]float64, len(a.Data))
	for i := 0; i < a.Rows; i++ {
		cv := c.Data[i]
		for j := 0; j < a.Cols; j++ {
			data[i*a.Cols+j] = a.Data[i*a.Cols+j] * cv
		}
	}
	out := newResult(a.Rows, a.Cols, data, nil, a, c)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		for i := 0; i < a.Rows; i++ {
			cv := c.Data[i]
			var s float64
			for j := 0; j < a.Cols; j++ {
				g := out.Grad[i*a.Cols+j]
				if a.Grad != nil {
					a.Grad[i*a.Cols+j] += g * cv
				}
				s += g * a.Data[i*a.Cols+j]
			}
			if c.Grad != nil {
				c.Grad[i] += s
			}
		}
	}
	return out
}

// ConcatCols concatenates tensors with equal row counts along the column
// axis: [MxA, MxB, ...] -> Mx(A+B+...).
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("autograd: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	total := 0
	for _, t := range ts {
		if t.Rows != rows {
			panic(fmt.Sprintf("autograd: ConcatCols row mismatch %d vs %d", t.Rows, rows))
		}
		total += t.Cols
	}
	data := make([]float64, rows*total)
	off := 0
	for _, t := range ts {
		for i := 0; i < rows; i++ {
			copy(data[i*total+off:i*total+off+t.Cols], t.Data[i*t.Cols:(i+1)*t.Cols])
		}
		off += t.Cols
	}
	out := newResult(rows, total, data, nil, ts...)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		off := 0
		for _, t := range ts {
			if t.Grad != nil {
				for i := 0; i < rows; i++ {
					src := out.Grad[i*total+off : i*total+off+t.Cols]
					dst := t.Grad[i*t.Cols : (i+1)*t.Cols]
					for j, g := range src {
						dst[j] += g
					}
				}
			}
			off += t.Cols
		}
	}
	return out
}

// SliceCols returns the column range [from, to) of a as a new tensor.
func SliceCols(a *Tensor, from, to int) *Tensor {
	if from < 0 || to > a.Cols || from >= to {
		panic(fmt.Sprintf("autograd: SliceCols [%d,%d) of %d cols", from, to, a.Cols))
	}
	w := to - from
	data := make([]float64, a.Rows*w)
	for i := 0; i < a.Rows; i++ {
		copy(data[i*w:(i+1)*w], a.Data[i*a.Cols+from:i*a.Cols+to])
	}
	out := newResult(a.Rows, w, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < w; j++ {
					a.Grad[i*a.Cols+from+j] += out.Grad[i*w+j]
				}
			}
		}
	}
	return out
}
