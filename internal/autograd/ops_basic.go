package autograd

import (
	"fmt"

	"mamdr/internal/autograd/kernels"
)

// Add returns the elementwise sum a + b. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	data := alloc(len(a.Data))
	kernels.AddTo(data, a.Data, b.Data)
	out := newResult(a.Rows, a.Cols, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			kernels.AccumAdd(a.Grad, out.Grad)
		}
		if b.Grad != nil {
			kernels.AccumAdd(b.Grad, out.Grad)
		}
	}
	return out
}

// Sub returns the elementwise difference a - b. Shapes must match.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	data := alloc(len(a.Data))
	kernels.SubTo(data, a.Data, b.Data)
	out := newResult(a.Rows, a.Cols, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			kernels.AccumAdd(a.Grad, out.Grad)
		}
		if b.Grad != nil {
			kernels.AccumSub(b.Grad, out.Grad)
		}
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b. Shapes must match.
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	data := alloc(len(a.Data))
	kernels.MulTo(data, a.Data, b.Data)
	out := newResult(a.Rows, a.Cols, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			kernels.MulAdd(a.Grad, out.Grad, b.Data)
		}
		if b.Grad != nil {
			kernels.MulAdd(b.Grad, out.Grad, a.Data)
		}
	}
	return out
}

// Scale returns s * a for a scalar constant s.
func Scale(a *Tensor, s float64) *Tensor {
	data := alloc(len(a.Data))
	kernels.ScaleTo(data, a.Data, s)
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			kernels.AxpyAdd(a.Grad, out.Grad, s)
		}
	}
	return out
}

// AddScalar returns a + s elementwise for a scalar constant s.
func AddScalar(a *Tensor, s float64) *Tensor {
	data := alloc(len(a.Data))
	kernels.AddScalarTo(data, a.Data, s)
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			kernels.AccumAdd(a.Grad, out.Grad)
		}
	}
	return out
}

// MatMul returns the matrix product a x b, where a is MxK and b is KxN.
//
// The product never short-circuits zero operands: 0×Inf = NaN under
// IEEE-754, so a zero-skip would silently mask non-finite values in
// either operand from the output — and from the NaN anomaly detectors
// watching the loss. Non-finite inputs always poison the output, in
// forward and in both backward products.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("autograd: MatMul %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	data := alloc(m * n)
	kernels.Default().GemmAdd(data, a.Data, b.Data, m, k, n)
	out := newResult(m, n, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		be := kernels.Default()
		// dA += dOut x B^T
		if a.Grad != nil {
			be.GemmABtAdd(a.Grad, out.Grad, b.Data, m, n, k)
		}
		// dB += A^T x dOut
		if b.Grad != nil {
			be.GemmAtBAdd(b.Grad, a.Data, out.Grad, m, k, n)
		}
	}
	return out
}

// AddRowVector adds a 1xN bias row b to every row of the MxN tensor a.
func AddRowVector(a, b *Tensor) *Tensor {
	if b.Rows != 1 || b.Cols != a.Cols {
		panic(fmt.Sprintf("autograd: AddRowVector %dx%d + %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	data := alloc(len(a.Data))
	for i := 0; i < a.Rows; i++ {
		kernels.AddTo(data[i*a.Cols:(i+1)*a.Cols], a.Data[i*a.Cols:(i+1)*a.Cols], b.Data)
	}
	out := newResult(a.Rows, a.Cols, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			kernels.AccumAdd(a.Grad, out.Grad)
		}
		if b.Grad != nil {
			kernels.ColSumAdd(b.Grad, out.Grad, a.Rows, a.Cols)
		}
	}
	return out
}

// MulColBroadcast multiplies each row of the MxN tensor a by the matching
// entry of the Mx1 column c: out[i][j] = a[i][j] * c[i][0].
func MulColBroadcast(a, c *Tensor) *Tensor {
	if c.Cols != 1 || c.Rows != a.Rows {
		panic(fmt.Sprintf("autograd: MulColBroadcast %dx%d * %dx%d", a.Rows, a.Cols, c.Rows, c.Cols))
	}
	data := alloc(len(a.Data))
	for i := 0; i < a.Rows; i++ {
		kernels.ScaleTo(data[i*a.Cols:(i+1)*a.Cols], a.Data[i*a.Cols:(i+1)*a.Cols], c.Data[i])
	}
	out := newResult(a.Rows, a.Cols, data, nil, a, c)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		for i := 0; i < a.Rows; i++ {
			cv := c.Data[i]
			var s float64
			for j := 0; j < a.Cols; j++ {
				g := out.Grad[i*a.Cols+j]
				if a.Grad != nil {
					a.Grad[i*a.Cols+j] += g * cv
				}
				s += g * a.Data[i*a.Cols+j]
			}
			if c.Grad != nil {
				c.Grad[i] += s
			}
		}
	}
	return out
}

// ConcatCols concatenates tensors with equal row counts along the column
// axis: [MxA, MxB, ...] -> Mx(A+B+...).
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("autograd: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	total := 0
	for _, t := range ts {
		if t.Rows != rows {
			panic(fmt.Sprintf("autograd: ConcatCols row mismatch %d vs %d", t.Rows, rows))
		}
		total += t.Cols
	}
	data := alloc(rows * total)
	off := 0
	for _, t := range ts {
		for i := 0; i < rows; i++ {
			copy(data[i*total+off:i*total+off+t.Cols], t.Data[i*t.Cols:(i+1)*t.Cols])
		}
		off += t.Cols
	}
	out := newResult(rows, total, data, nil, ts...)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		off := 0
		for _, t := range ts {
			if t.Grad != nil {
				for i := 0; i < rows; i++ {
					kernels.AccumAdd(t.Grad[i*t.Cols:(i+1)*t.Cols], out.Grad[i*total+off:i*total+off+t.Cols])
				}
			}
			off += t.Cols
		}
	}
	return out
}

// SliceCols returns the column range [from, to) of a as a new tensor.
func SliceCols(a *Tensor, from, to int) *Tensor {
	if from < 0 || to > a.Cols || from >= to {
		panic(fmt.Sprintf("autograd: SliceCols [%d,%d) of %d cols", from, to, a.Cols))
	}
	w := to - from
	data := alloc(a.Rows * w)
	for i := 0; i < a.Rows; i++ {
		copy(data[i*w:(i+1)*w], a.Data[i*a.Cols+from:i*a.Cols+to])
	}
	out := newResult(a.Rows, w, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i := 0; i < a.Rows; i++ {
				kernels.AccumAdd(a.Grad[i*a.Cols+from:i*a.Cols+to], out.Grad[i*w:(i+1)*w])
			}
		}
	}
	return out
}
