package autograd

import (
	"fmt"
	"math"
)

// BCEWithLogits computes the mean binary cross-entropy between logits
// (Nx1) and labels (N values in {0,1}), fusing the sigmoid for numerical
// stability:
//
//	loss_i = max(x,0) - x*y + log(1 + exp(-|x|))
//
// The result is a 1x1 scalar suitable for Backward.
func BCEWithLogits(logits *Tensor, labels []float64) *Tensor {
	if logits.Cols != 1 || logits.Rows != len(labels) {
		panic(fmt.Sprintf("autograd: BCEWithLogits logits %dx%d vs %d labels", logits.Rows, logits.Cols, len(labels)))
	}
	n := len(labels)
	var total float64
	for i, x := range logits.Data {
		y := labels[i]
		total += math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
	}
	loss := total / float64(n)
	data := alloc(1)
	data[0] = loss
	out := newResult(1, 1, data, nil, logits)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if logits.Grad == nil {
			return
		}
		g := out.Grad[0] / float64(n)
		for i, x := range logits.Data {
			p := 1 / (1 + math.Exp(-x))
			logits.Grad[i] += g * (p - labels[i])
		}
	}
	return out
}

// MSE computes the mean squared error between predictions (Nx1) and
// targets as a 1x1 scalar.
func MSE(pred *Tensor, targets []float64) *Tensor {
	if pred.Cols != 1 || pred.Rows != len(targets) {
		panic(fmt.Sprintf("autograd: MSE pred %dx%d vs %d targets", pred.Rows, pred.Cols, len(targets)))
	}
	n := len(targets)
	var total float64
	for i, x := range pred.Data {
		d := x - targets[i]
		total += d * d
	}
	data := alloc(1)
	data[0] = total / float64(n)
	out := newResult(1, 1, data, nil, pred)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if pred.Grad == nil {
			return
		}
		g := out.Grad[0] * 2 / float64(n)
		for i, x := range pred.Data {
			pred.Grad[i] += g * (x - targets[i])
		}
	}
	return out
}

// L2Penalty returns lambda/2 * sum over all given tensors of the squared
// Frobenius norm, as a 1x1 scalar attached to the graph.
func L2Penalty(lambda float64, params ...*Tensor) *Tensor {
	var total float64
	for _, p := range params {
		for _, v := range p.Data {
			total += v * v
		}
	}
	data := alloc(1)
	data[0] = lambda / 2 * total
	out := newResult(1, 1, data, nil, params...)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		g := out.Grad[0] * lambda
		for _, p := range params {
			if p.Grad == nil {
				continue
			}
			for i, v := range p.Data {
				p.Grad[i] += g * v
			}
		}
	}
	return out
}
