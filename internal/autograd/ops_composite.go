package autograd

import "fmt"

// Field-embedding composite operations.
//
// Several CTR model structures (DeepFM, NeurFM) operate on a set of f
// field-embedding vectors of dimension d per example. We represent such a
// batch as an Nx(f*d) tensor whose row layout is [field0 | field1 | ...].
// The composite ops below implement the factorization-machine style
// pairwise interactions with hand-written backward passes (verified
// against finite differences in the tests), avoiding an f^2 explosion of
// graph nodes.

func assertFields(op string, a *Tensor, fields, dim int) {
	if a.Cols != fields*dim {
		panic(fmt.Sprintf("autograd: %s expects %d cols (fields=%d, dim=%d), got %d", op, fields*dim, fields, dim, a.Cols))
	}
}

// BiInteraction computes the NeurFM bi-interaction pooling of field
// embeddings: for each example and each embedding coordinate k,
//
//	out[k] = 0.5 * ((Σ_f v_f[k])^2 - Σ_f v_f[k]^2),
//
// reducing an Nx(fields*dim) input to an Nxdim output. It equals the sum
// of elementwise products over all field pairs.
func BiInteraction(a *Tensor, fields, dim int) *Tensor {
	assertFields("BiInteraction", a, fields, dim)
	n := a.Rows
	data := alloc(n * dim)
	sums := make([]float64, n*dim) // S[b,k] = Σ_f v, reused in backward
	for b := 0; b < n; b++ {
		row := a.Data[b*a.Cols : (b+1)*a.Cols]
		srow := sums[b*dim : (b+1)*dim]
		orow := data[b*dim : (b+1)*dim]
		for f := 0; f < fields; f++ {
			for k := 0; k < dim; k++ {
				v := row[f*dim+k]
				srow[k] += v
				orow[k] -= v * v
			}
		}
		for k := 0; k < dim; k++ {
			orow[k] = 0.5 * (srow[k]*srow[k] + orow[k])
		}
	}
	out := newResult(n, dim, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad == nil {
			return
		}
		for b := 0; b < n; b++ {
			row := a.Data[b*a.Cols : (b+1)*a.Cols]
			grow := a.Grad[b*a.Cols : (b+1)*a.Cols]
			srow := sums[b*dim : (b+1)*dim]
			orow := out.Grad[b*dim : (b+1)*dim]
			for f := 0; f < fields; f++ {
				for k := 0; k < dim; k++ {
					// d out[k] / d v_f[k] = S[k] - v_f[k]
					grow[f*dim+k] += orow[k] * (srow[k] - row[f*dim+k])
				}
			}
		}
	}
	return out
}

// FMSecondOrder computes the factorization-machine second-order term per
// example: 0.5 * Σ_k ((Σ_f v_f[k])^2 - Σ_f v_f[k]^2), reducing an
// Nx(fields*dim) input to an Nx1 column. It equals the sum over all field
// pairs of their embedding inner products.
func FMSecondOrder(a *Tensor, fields, dim int) *Tensor {
	assertFields("FMSecondOrder", a, fields, dim)
	n := a.Rows
	data := alloc(n)
	sums := make([]float64, n*dim)
	for b := 0; b < n; b++ {
		row := a.Data[b*a.Cols : (b+1)*a.Cols]
		srow := sums[b*dim : (b+1)*dim]
		var sq float64
		for f := 0; f < fields; f++ {
			for k := 0; k < dim; k++ {
				v := row[f*dim+k]
				srow[k] += v
				sq += v * v
			}
		}
		var s2 float64
		for k := 0; k < dim; k++ {
			s2 += srow[k] * srow[k]
		}
		data[b] = 0.5 * (s2 - sq)
	}
	out := newResult(n, 1, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad == nil {
			return
		}
		for b := 0; b < n; b++ {
			row := a.Data[b*a.Cols : (b+1)*a.Cols]
			grow := a.Grad[b*a.Cols : (b+1)*a.Cols]
			srow := sums[b*dim : (b+1)*dim]
			g := out.Grad[b]
			for f := 0; f < fields; f++ {
				for k := 0; k < dim; k++ {
					grow[f*dim+k] += g * (srow[k] - row[f*dim+k])
				}
			}
		}
	}
	return out
}
