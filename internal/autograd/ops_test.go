package autograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	gcEps = 1e-5
	gcTol = 1e-5
)

// randParam builds a deterministic random parameter for gradient checks.
func randParam(rows, cols int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	return ParamRand(rows, cols, 1, rng)
}

func checkOp(t *testing.T, name string, f func() *Tensor, params ...*Tensor) {
	t.Helper()
	if err := CheckGradients(f, params, gcEps, gcTol); err != nil {
		t.Fatalf("%s gradient check: %v", name, err)
	}
}

func TestAddForward(t *testing.T) {
	c := Add(New(1, 3, []float64{1, 2, 3}), New(1, 3, []float64{10, 20, 30}))
	want := []float64{11, 22, 33}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("Add[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestAddGrad(t *testing.T) {
	a, b := randParam(2, 3, 1), randParam(2, 3, 2)
	checkOp(t, "Add", func() *Tensor { return Sum(Square(Add(a, b))) }, a, b)
}

func TestSubGrad(t *testing.T) {
	a, b := randParam(2, 3, 3), randParam(2, 3, 4)
	checkOp(t, "Sub", func() *Tensor { return Sum(Square(Sub(a, b))) }, a, b)
}

func TestMulGrad(t *testing.T) {
	a, b := randParam(2, 3, 5), randParam(2, 3, 6)
	checkOp(t, "Mul", func() *Tensor { return Sum(Square(Mul(a, b))) }, a, b)
}

func TestScaleGrad(t *testing.T) {
	a := randParam(2, 3, 7)
	checkOp(t, "Scale", func() *Tensor { return Sum(Square(Scale(a, -1.7))) }, a)
}

func TestAddScalarGrad(t *testing.T) {
	a := randParam(2, 3, 8)
	checkOp(t, "AddScalar", func() *Tensor { return Sum(Square(AddScalar(a, 0.3))) }, a)
}

func TestMatMulForward(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := New(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestMatMulGrad(t *testing.T) {
	a, b := randParam(3, 4, 9), randParam(4, 2, 10)
	checkOp(t, "MatMul", func() *Tensor { return Sum(Square(MatMul(a, b))) }, a, b)
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(Zeros(2, 3), Zeros(2, 3))
}

func TestAddRowVectorGrad(t *testing.T) {
	a, b := randParam(3, 4, 11), randParam(1, 4, 12)
	checkOp(t, "AddRowVector", func() *Tensor { return Sum(Square(AddRowVector(a, b))) }, a, b)
}

func TestMulColBroadcastGrad(t *testing.T) {
	a, c := randParam(3, 4, 13), randParam(3, 1, 14)
	checkOp(t, "MulColBroadcast", func() *Tensor { return Sum(Square(MulColBroadcast(a, c))) }, a, c)
}

func TestConcatColsForwardAndGrad(t *testing.T) {
	a, b := randParam(2, 2, 15), randParam(2, 3, 16)
	c := ConcatCols(a.Detach(), b.Detach())
	if c.Rows != 2 || c.Cols != 5 {
		t.Fatalf("ConcatCols shape = %dx%d, want 2x5", c.Rows, c.Cols)
	}
	if c.At(1, 0) != a.At(1, 0) || c.At(0, 2) != b.At(0, 0) {
		t.Fatal("ConcatCols layout wrong")
	}
	checkOp(t, "ConcatCols", func() *Tensor { return Sum(Square(ConcatCols(a, b))) }, a, b)
}

func TestSliceColsForwardAndGrad(t *testing.T) {
	a := randParam(3, 6, 17)
	s := SliceCols(a.Detach(), 2, 5)
	if s.Rows != 3 || s.Cols != 3 {
		t.Fatalf("SliceCols shape = %dx%d, want 3x3", s.Rows, s.Cols)
	}
	if s.At(1, 0) != a.At(1, 2) {
		t.Fatal("SliceCols content wrong")
	}
	checkOp(t, "SliceCols", func() *Tensor { return Sum(Square(SliceCols(a, 1, 4))) }, a)
}

func TestSliceThenConcatRoundTrip(t *testing.T) {
	a := randParam(2, 6, 18).Detach()
	r := ConcatCols(SliceCols(a, 0, 3), SliceCols(a, 3, 6))
	for i := range a.Data {
		if r.Data[i] != a.Data[i] {
			t.Fatal("slice+concat should reproduce the input")
		}
	}
}

func TestActivationGrads(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   func(*Tensor) *Tensor
	}{
		{"Sigmoid", Sigmoid},
		{"ReLU", ReLU},
		{"Tanh", Tanh},
		{"Exp", Exp},
		{"Square", Square},
		{"LeakyReLU", func(x *Tensor) *Tensor { return LeakyReLU(x, 0.1) }},
	} {
		// Shift away from 0 so ReLU's kink doesn't break finite differences.
		a := randParam(2, 3, 19)
		for i := range a.Data {
			a.Data[i] += 0.5
			if math.Abs(a.Data[i]) < 0.1 {
				a.Data[i] = 0.25
			}
		}
		checkOp(t, tc.name, func() *Tensor { return Sum(Square(tc.op(a))) }, a)
	}
}

func TestLogGrad(t *testing.T) {
	a := randParam(2, 3, 20)
	for i := range a.Data {
		a.Data[i] = math.Abs(a.Data[i]) + 0.5 // keep strictly positive
	}
	checkOp(t, "Log", func() *Tensor { return Sum(Square(Log(a))) }, a)
}

func TestSigmoidRange(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		s := Sigmoid(Scalar(v)).Item()
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := ParamRand(5, 7, 10, rng)
	s := SoftmaxRows(a.Detach())
	for i := 0; i < s.Rows; i++ {
		var sum float64
		for j := 0; j < s.Cols; j++ {
			v := s.At(i, j)
			if v < 0 {
				t.Fatal("softmax produced negative probability")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestSoftmaxRowsGrad(t *testing.T) {
	a := randParam(3, 4, 22)
	w := randParam(3, 4, 23).Detach() // fixed weights make the loss non-symmetric
	checkOp(t, "SoftmaxRows", func() *Tensor { return Sum(Mul(SoftmaxRows(a), w)) }, a)
}

func TestSoftmaxNumericalStability(t *testing.T) {
	a := New(1, 3, []float64{1000, 1000, 1000})
	s := SoftmaxRows(a)
	for _, v := range s.Data {
		if math.IsNaN(v) || math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("unstable softmax: %v", s.Data)
		}
	}
}

func TestReductionGrads(t *testing.T) {
	a := randParam(3, 4, 24)
	checkOp(t, "Sum", func() *Tensor { return Square(Sum(a)) }, a)
	checkOp(t, "Mean", func() *Tensor { return Square(Mean(a)) }, a)
	checkOp(t, "SumRows", func() *Tensor { return Sum(Square(SumRows(a))) }, a)
}

func TestRowDotForwardAndGrad(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4})
	b := New(2, 2, []float64{5, 6, 7, 8})
	d := RowDot(a, b)
	if d.Data[0] != 17 || d.Data[1] != 53 {
		t.Fatalf("RowDot = %v, want [17 53]", d.Data)
	}
	pa, pb := randParam(3, 4, 25), randParam(3, 4, 26)
	checkOp(t, "RowDot", func() *Tensor { return Sum(Square(RowDot(pa, pb))) }, pa, pb)
}

func TestGatherForward(t *testing.T) {
	table := New(3, 2, []float64{0, 1, 10, 11, 20, 21})
	g := Gather(table, []int{2, 0, 2})
	want := []float64{20, 21, 0, 1, 20, 21}
	for i, w := range want {
		if g.Data[i] != w {
			t.Fatalf("Gather[%d] = %g, want %g", i, g.Data[i], w)
		}
	}
}

func TestGatherGradWithRepeats(t *testing.T) {
	table := randParam(4, 3, 27)
	idx := []int{1, 3, 1, 1}
	checkOp(t, "Gather", func() *Tensor { return Sum(Square(Gather(table, idx))) }, table)
}

func TestGatherOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	Gather(Zeros(2, 2), []int{5})
}

func TestDropoutEval(t *testing.T) {
	a := New(1, 4, []float64{1, 2, 3, 4})
	out := Dropout(a, 0.5, false, rand.New(rand.NewSource(1)))
	if out != a {
		t.Fatal("Dropout in eval mode must be identity")
	}
}

func TestDropoutTrainingScalesSurvivors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(1, 1000, make([]float64, 1000))
	for i := range a.Data {
		a.Data[i] = 1
	}
	out := Dropout(a, 0.3, true, rng)
	var zeros int
	for _, v := range out.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-1/0.7) > 1e-12:
			t.Fatalf("survivor scaled to %g, want %g", v, 1/0.7)
		}
	}
	if zeros < 200 || zeros > 400 {
		t.Fatalf("dropped %d of 1000 at p=0.3", zeros)
	}
}

func TestDropoutGrad(t *testing.T) {
	// A fixed rng seed makes the dropout mask deterministic across the
	// analytic and numeric passes as long as we rebuild the rng in f.
	a := randParam(2, 5, 28)
	checkOp(t, "Dropout", func() *Tensor {
		rng := rand.New(rand.NewSource(42))
		return Sum(Square(Dropout(a, 0.4, true, rng)))
	}, a)
}

func TestBCEWithLogitsMatchesDirectFormula(t *testing.T) {
	logits := New(3, 1, []float64{2, -1, 0.5})
	labels := []float64{1, 0, 1}
	got := BCEWithLogits(logits, labels).Item()
	var want float64
	for i, x := range logits.Data {
		p := 1 / (1 + math.Exp(-x))
		want += -(labels[i]*math.Log(p) + (1-labels[i])*math.Log(1-p))
	}
	want /= 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("BCE = %g, want %g", got, want)
	}
}

func TestBCEWithLogitsGrad(t *testing.T) {
	logits := randParam(5, 1, 29)
	labels := []float64{1, 0, 1, 1, 0}
	checkOp(t, "BCEWithLogits", func() *Tensor { return BCEWithLogits(logits, labels) }, logits)
}

func TestBCEWithLogitsExtremeLogitsFinite(t *testing.T) {
	logits := Param(2, 1, []float64{500, -500})
	loss := BCEWithLogits(logits, []float64{0, 1})
	if math.IsInf(loss.Item(), 0) || math.IsNaN(loss.Item()) {
		t.Fatalf("loss not finite: %g", loss.Item())
	}
	loss.Backward()
	for _, g := range logits.Grad {
		if math.IsNaN(g) {
			t.Fatal("gradient is NaN for extreme logits")
		}
	}
}

func TestMSEGrad(t *testing.T) {
	pred := randParam(4, 1, 30)
	targets := []float64{0.5, -0.25, 1, 0}
	checkOp(t, "MSE", func() *Tensor { return MSE(pred, targets) }, pred)
}

func TestL2PenaltyGrad(t *testing.T) {
	a, b := randParam(2, 2, 31), randParam(1, 3, 32)
	checkOp(t, "L2Penalty", func() *Tensor { return L2Penalty(0.1, a, b) }, a, b)
}

func TestBiInteractionMatchesPairwiseSum(t *testing.T) {
	const fields, dim = 3, 2
	rng := rand.New(rand.NewSource(33))
	a := ParamRand(2, fields*dim, 1, rng).Detach()
	out := BiInteraction(a, fields, dim)
	for b := 0; b < 2; b++ {
		for k := 0; k < dim; k++ {
			var want float64
			for f1 := 0; f1 < fields; f1++ {
				for f2 := f1 + 1; f2 < fields; f2++ {
					want += a.At(b, f1*dim+k) * a.At(b, f2*dim+k)
				}
			}
			if math.Abs(out.At(b, k)-want) > 1e-12 {
				t.Fatalf("BiInteraction[%d,%d] = %g, want %g", b, k, out.At(b, k), want)
			}
		}
	}
}

func TestBiInteractionGrad(t *testing.T) {
	a := randParam(3, 6, 34) // 3 fields x dim 2
	checkOp(t, "BiInteraction", func() *Tensor { return Sum(Square(BiInteraction(a, 3, 2))) }, a)
}

func TestFMSecondOrderEqualsSumOfBiInteraction(t *testing.T) {
	const fields, dim = 4, 3
	a := randParam(2, fields*dim, 35).Detach()
	fm := FMSecondOrder(a, fields, dim)
	bi := BiInteraction(a, fields, dim)
	for b := 0; b < 2; b++ {
		var want float64
		for k := 0; k < dim; k++ {
			want += bi.At(b, k)
		}
		if math.Abs(fm.At(b, 0)-want) > 1e-12 {
			t.Fatalf("FM[%d] = %g, want %g", b, fm.At(b, 0), want)
		}
	}
}

func TestFMSecondOrderGrad(t *testing.T) {
	a := randParam(2, 8, 36) // 4 fields x dim 2
	checkOp(t, "FMSecondOrder", func() *Tensor { return Sum(Square(FMSecondOrder(a, 4, 2))) }, a)
}

func TestFieldShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad field shape")
		}
	}()
	BiInteraction(Zeros(1, 5), 2, 3)
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		a, b := Scalar(x), Scalar(y)
		return Add(a, b).Item() == Add(b, a).Item()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := ParamRand(n, n, 1, rng).Detach()
		id := Zeros(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		p := MatMul(a, id)
		for i := range a.Data {
			if math.Abs(p.Data[i]-a.Data[i]) > 1e-12 {
				t.Fatal("A x I != A")
			}
		}
	}
}

func TestDeepChainGradient(t *testing.T) {
	// A 6-layer random MLP-like chain gradient-checks end to end.
	rng := rand.New(rand.NewSource(38))
	x := ParamRand(4, 5, 1, rng).Detach()
	var params []*Tensor
	ws := make([]*Tensor, 6)
	bs := make([]*Tensor, 6)
	dims := []int{5, 7, 6, 5, 4, 3, 1}
	for l := 0; l < 6; l++ {
		ws[l] = ParamXavier(dims[l], dims[l+1], rng)
		bs[l] = ParamZeros(1, dims[l+1])
		params = append(params, ws[l], bs[l])
	}
	f := func() *Tensor {
		h := x
		for l := 0; l < 6; l++ {
			h = AddRowVector(MatMul(h, ws[l]), bs[l])
			if l < 5 {
				h = Tanh(h)
			}
		}
		return BCEWithLogits(h, []float64{1, 0, 1, 0})
	}
	if err := CheckGradients(f, params, gcEps, 1e-4); err != nil {
		t.Fatalf("deep chain gradient check: %v", err)
	}
}
