package autograd

import (
	"runtime/debug"
	"testing"
)

// TestBackwardVeryDeepGraph is the stack-depth regression test:
// Backward's post-order used to be a recursive DFS, and a graph a few
// hundred thousand nodes deep — a long chain of inner-loop steps —
// blew the goroutine stack, which is a fatal, unrecoverable error.
// The iterative traversal must handle it under a deliberately small
// stack ceiling.
func TestBackwardVeryDeepGraph(t *testing.T) {
	old := debug.SetMaxStack(4 << 20) // 4 MiB: the recursive walk dies ~50k frames in
	defer debug.SetMaxStack(old)

	const depth = 200_000
	x := Param(1, 1, []float64{1})
	h := AddScalar(x, 0)
	for i := 1; i < depth; i++ {
		h = AddScalar(h, 0)
	}
	h.Backward()
	if got := x.Grad[0]; got != 1 {
		t.Fatalf("grad through %d-deep chain = %g, want 1", depth, got)
	}
	h.Release()
}

// TestReleaseRecyclesGraphBuffers verifies Release returns op-result
// buffers to the arena (the same allocation comes back on the next
// step) and never touches leaves.
func TestReleaseRecyclesGraphBuffers(t *testing.T) {
	x := Param(4, 4, make([]float64, 16))
	w := ParamZeros(4, 4)

	out := MatMul(x, w)
	loss := Sum(out)
	loss.Backward()
	outData := &out.Data[0]
	loss.Release()

	if out.Data != nil || out.parents != nil || out.backward != nil {
		t.Fatal("Release left the op result alive")
	}
	if x.Data == nil || w.Data == nil || x.Grad == nil {
		t.Fatal("Release touched leaf parameters")
	}

	// The next identically-shaped step should reuse the same buffer.
	out2 := MatMul(x, w)
	if &out2.Data[0] != outData {
		t.Log("note: arena handed out a different buffer (GC may have intervened); values still correct")
	}
	for i, v := range out2.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %g", i, v)
		}
	}
	Sum(out2).Release()

	// Release on a bare leaf is a no-op.
	x.Release()
	if x.Data == nil {
		t.Fatal("Release freed a leaf")
	}
}

// TestReleasedTensorSafeAgainstDoubleRelease pins that a second
// Release is harmless (the buffers must not be double-pooled, which
// would hand one slice to two tensors).
func TestReleasedTensorSafeAgainstDoubleRelease(t *testing.T) {
	x := Param(2, 2, []float64{1, 2, 3, 4})
	out := Scale(x, 2)
	out.Release()
	out.Release()
	if out.Data != nil {
		t.Fatal("double Release resurrected the tensor")
	}
}
