package autograd

import (
	"fmt"
	"math/rand"

	"mamdr/internal/autograd/kernels"
)

// Gather selects rows of the table (VxD) by index, producing an NxD
// tensor where row i is table[indices[i]]. It is the embedding-lookup
// primitive; the backward pass scatter-adds gradients into the selected
// rows only, which keeps sparse-embedding training cheap.
func Gather(table *Tensor, indices []int) *Tensor {
	d := table.Cols
	data := alloc(len(indices) * d)
	for i, idx := range indices {
		if idx < 0 || idx >= table.Rows {
			panic(fmt.Sprintf("autograd: Gather index %d out of range [0,%d)", idx, table.Rows))
		}
		copy(data[i*d:(i+1)*d], table.Data[idx*d:(idx+1)*d])
	}
	out := newResult(len(indices), d, data, nil, table)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if table.Grad != nil {
			for i, idx := range indices {
				kernels.AccumAdd(table.Grad[idx*d:(idx+1)*d], out.Grad[i*d:(i+1)*d])
			}
		}
	}
	return out
}

// Dropout randomly zeroes elements of a with probability p and scales the
// survivors by 1/(1-p) (inverted dropout). When training is false it is
// the identity.
func Dropout(a *Tensor, p float64, training bool, rng *rand.Rand) *Tensor {
	if !training || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autograd: Dropout probability must be < 1")
	}
	keep := 1 - p
	mask := make([]float64, len(a.Data))
	data := alloc(len(a.Data))
	for i, v := range a.Data {
		if rng.Float64() < keep {
			mask[i] = 1 / keep
			data[i] = v * mask[i]
		}
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g * mask[i]
			}
		}
	}
	return out
}
