package autograd

import (
	"math"
	"testing"
)

// TestMatMulPropagatesNonFinite is the regression test for the
// zero-skip bug: MatMul's old `av == 0` fast path skipped multiplying
// against rows of b containing Inf/NaN, silently masking poisoned
// parameters from the loss (IEEE-754: 0×Inf = NaN). On the seed code
// this test fails with a finite output; after the kernel rewrite the
// NaN must reach the output.
func TestMatMulPropagatesNonFinite(t *testing.T) {
	// a's only nonzero lines up with b's finite row, so the poisoned
	// Inf row of b is touched *only* through the 0×Inf product.
	a := New(1, 2, []float64{0, 1})
	b := New(2, 1, []float64{math.Inf(1), 5})
	out := MatMul(a, b)
	if !math.IsNaN(out.Data[0]) {
		t.Fatalf("MatMul([0 1], [Inf 5]ᵀ) = %g, want NaN: the zero-skip is masking the Inf row", out.Data[0])
	}

	nan := New(2, 1, []float64{math.NaN(), 5})
	if out := MatMul(a, nan); !math.IsNaN(out.Data[0]) {
		t.Fatalf("MatMul over a NaN row = %g, want NaN", out.Data[0])
	}
}

// TestMatMulBackwardPropagatesNonFinite covers the dB-side zero-skip
// (`av == 0` in the Aᵀ·dOut product): a zero activation must not hide
// a non-finite upstream gradient from the weight gradient.
func TestMatMulBackwardPropagatesNonFinite(t *testing.T) {
	a := New(1, 2, []float64{0, 1})
	w := Param(2, 1, []float64{2, 3})
	// Scale the matmul output by +Inf so dOut at the product is +Inf;
	// dW row 0 is then 0×Inf = NaN, which the seed code skipped.
	loss := Sum(Scale(MatMul(a, w), math.Inf(1)))
	loss.Backward()
	if !math.IsNaN(w.Grad[0]) {
		t.Fatalf("dW[0] = %g, want NaN: dB zero-skip is masking the Inf gradient", w.Grad[0])
	}
	if !math.IsInf(w.Grad[1], 1) {
		t.Fatalf("dW[1] = %g, want +Inf", w.Grad[1])
	}
}

// TestMeanOfEmptyTensorPanics pins the Mean precondition: a zero-size
// tensor used to divide by zero and silently return ±Inf/NaN.
func TestMeanOfEmptyTensorPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Mean of a 0x3 tensor did not panic")
		}
	}()
	Mean(Zeros(0, 3))
}
