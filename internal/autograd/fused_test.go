package autograd

import (
	"math"
	"math/rand"
	"testing"

	"mamdr/internal/autograd/kernels"
)

// composedDense is the unfused reference: act(AddRowVector(MatMul(x, w), b)).
func composedDense(x, w, b *Tensor, act Act, slope float64) *Tensor {
	h := AddRowVector(MatMul(x, w), b)
	switch act {
	case ActIdentity:
		return h
	case ActReLU:
		return ReLU(h)
	case ActSigmoid:
		return Sigmoid(h)
	case ActTanh:
		return Tanh(h)
	case ActLeaky:
		return LeakyReLU(h, slope)
	}
	panic("unknown act")
}

// TestDenseActMatchesComposedOps verifies the fused dense kernel is
// bit-identical to the three composed ops it replaces — values and all
// three gradients — for every activation and at several thread counts.
func TestDenseActMatchesComposedOps(t *testing.T) {
	defer kernels.SetThreads(0)
	rng := rand.New(rand.NewSource(11))
	acts := []Act{ActIdentity, ActReLU, ActSigmoid, ActTanh, ActLeaky}
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(20)
		k := 1 + rng.Intn(20)
		n := 1 + rng.Intn(20)
		act := acts[trial%len(acts)]
		xs := make([]float64, m*k)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			if rng.Float64() < 0.2 {
				xs[i] = 0
			}
		}

		run := func(fused bool) ([]float64, []float64, []float64, []float64) {
			rng2 := rand.New(rand.NewSource(int64(trial)))
			x := Param(m, k, append([]float64(nil), xs...))
			w := ParamXavier(k, n, rng2)
			b := ParamRand(1, n, 0.5, rng2)
			var out *Tensor
			if fused {
				out = DenseAct(x, w, b, act, 0.01)
			} else {
				out = composedDense(x, w, b, act, 0.01)
			}
			Sum(out).Backward()
			return append([]float64(nil), out.Data...),
				append([]float64(nil), x.Grad...),
				append([]float64(nil), w.Grad...),
				append([]float64(nil), b.Grad...)
		}

		wantOut, wantX, wantW, wantB := run(false)
		for _, threads := range []int{1, 4} {
			kernels.SetThreads(threads)
			gotOut, gotX, gotW, gotB := run(true)
			for name, pair := range map[string][2][]float64{
				"out": {gotOut, wantOut}, "dX": {gotX, wantX},
				"dW": {gotW, wantW}, "dB": {gotB, wantB},
			} {
				for i := range pair[0] {
					if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
						t.Fatalf("act=%d threads=%d %s[%d]: fused %g vs composed %g",
							act, threads, name, i, pair[0][i], pair[1][i])
					}
				}
			}
		}
	}
}

// TestDenseActGradients runs the finite-difference gate through the
// fused bias+activation path for each smooth activation (ReLU-family
// kinks are avoided by keeping pre-activations away from zero).
func TestDenseActGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := Param(3, 4, nil2slice(12, rng))
	for _, act := range []Act{ActIdentity, ActSigmoid, ActTanh, ActReLU, ActLeaky} {
		w := ParamXavier(4, 5, rng)
		b := ParamRand(1, 5, 0.5, rng)
		f := func() *Tensor {
			return Mean(DenseAct(x, w, b, act, 0.01))
		}
		if err := CheckGradients(f, []*Tensor{x, w, b}, 1e-6, 1e-6); err != nil {
			t.Fatalf("act %d: %v", act, err)
		}
	}
}

func nil2slice(n int, rng *rand.Rand) []float64 {
	d := make([]float64, n)
	for i := range d {
		// Away from zero so ReLU's kink cannot straddle the eps probe.
		d[i] = rng.NormFloat64() + math.Copysign(0.5, rng.NormFloat64())
	}
	return d
}
