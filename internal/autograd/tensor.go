// Package autograd implements a small reverse-mode automatic
// differentiation engine over dense float64 tensors.
//
// The engine is deliberately minimal: it supports exactly the operations
// needed by the CTR models and learning frameworks in this repository
// (dense layers, embeddings, attention, factorization machines, and the
// losses used for click-through-rate prediction). Tensors are at most
// two-dimensional; a scalar is represented as a 1x1 tensor.
//
// A computation graph is built implicitly as operations are applied.
// Calling Backward on a scalar output propagates gradients to every
// reachable tensor whose RequiresGrad flag is set. Graphs are single-use:
// build, Backward, then discard and rebuild on the next step.
package autograd

import (
	"fmt"
	"math"
	"math/rand"

	"mamdr/internal/autograd/kernels"
)

// Tensor is a dense, row-major matrix of float64 values that can
// participate in reverse-mode differentiation.
type Tensor struct {
	// Rows and Cols give the tensor's shape. A vector is 1xN or Nx1,
	// a scalar is 1x1.
	Rows, Cols int
	// Data holds Rows*Cols values in row-major order.
	Data []float64
	// Grad accumulates the gradient of the loss with respect to Data.
	// It is nil until the tensor participates in a backward pass (or is
	// a parameter created with Param, which always carries a Grad buffer).
	Grad []float64

	requiresGrad bool
	parents      []*Tensor
	backward     func()
	// pooled marks Data (and Grad) as drawn from the kernels buffer
	// arena; Release returns such buffers for reuse.
	pooled bool
}

// alloc returns a zeroed buffer from the kernels arena. Op results
// allocate through it so Release can recycle their memory.
func alloc(n int) []float64 { return kernels.Get(n) }

// New returns a tensor of the given shape backed by data. The slice is
// used directly (not copied); len(data) must equal rows*cols.
func New(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("autograd: New(%d, %d) with %d values", rows, cols, len(data)))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Zeros returns a rows x cols tensor of zeros.
func Zeros(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Scalar returns a 1x1 constant tensor holding v.
func Scalar(v float64) *Tensor { return New(1, 1, []float64{v}) }

// Param returns a rows x cols trainable tensor initialized with data.
// Trainable tensors always carry an allocated gradient buffer.
func Param(rows, cols int, data []float64) *Tensor {
	t := New(rows, cols, data)
	t.requiresGrad = true
	t.Grad = make([]float64, len(data))
	return t
}

// ParamZeros returns a zero-initialized trainable tensor.
func ParamZeros(rows, cols int) *Tensor {
	return Param(rows, cols, make([]float64, rows*cols))
}

// ParamRand returns a trainable tensor with entries drawn uniformly from
// [-scale, scale] using rng.
func ParamRand(rows, cols int, scale float64, rng *rand.Rand) *Tensor {
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = (rng.Float64()*2 - 1) * scale
	}
	return Param(rows, cols, data)
}

// ParamXavier returns a trainable tensor initialized with Glorot/Xavier
// uniform initialization for a layer with the given fan-in and fan-out.
func ParamXavier(rows, cols int, rng *rand.Rand) *Tensor {
	limit := math.Sqrt(6.0 / float64(rows+cols))
	return ParamRand(rows, cols, limit, rng)
}

// Size returns the number of elements in the tensor.
func (t *Tensor) Size() int { return t.Rows * t.Cols }

// RequiresGrad reports whether the tensor accumulates gradients.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// SetRequiresGrad marks the tensor trainable (or not), allocating the
// gradient buffer when enabling.
func (t *Tensor) SetRequiresGrad(v bool) {
	t.requiresGrad = v
	if v && t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Item returns the sole value of a scalar (1x1) tensor.
func (t *Tensor) Item() float64 {
	if t.Size() != 1 {
		panic(fmt.Sprintf("autograd: Item on %dx%d tensor", t.Rows, t.Cols))
	}
	return t.Data[0]
}

// Clone returns a deep copy of the tensor's value (graph edges and
// gradients are not copied). The clone preserves the RequiresGrad flag.
func (t *Tensor) Clone() *Tensor {
	data := make([]float64, len(t.Data))
	copy(data, t.Data)
	c := New(t.Rows, t.Cols, data)
	if t.requiresGrad {
		c.SetRequiresGrad(true)
	}
	return c
}

// ZeroGrad clears the accumulated gradient in place.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// ensureGrad allocates the gradient buffer if absent. Pooled (op
// result) tensors draw it from the arena so Release can recycle it.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		if t.pooled {
			t.Grad = alloc(len(t.Data))
		} else {
			t.Grad = make([]float64, len(t.Data))
		}
	}
}

// needsGraph reports whether an op over these inputs must record a
// backward edge.
func needsGraph(inputs ...*Tensor) bool {
	for _, in := range inputs {
		if in.requiresGrad || in.backward != nil || len(in.parents) > 0 {
			return true
		}
	}
	return false
}

// newResult builds the output tensor of an op, wiring graph edges when any
// input participates in differentiation. Every op allocates data via
// alloc, so the result is marked pooled for Release.
func newResult(rows, cols int, data []float64, bw func(), inputs ...*Tensor) *Tensor {
	out := New(rows, cols, data)
	out.pooled = true
	if needsGraph(inputs...) {
		out.parents = inputs
		out.backward = bw
		out.ensureGrad()
	}
	return out
}

// Backward runs reverse-mode differentiation from t, which must be a
// scalar. Gradients are accumulated into the Grad buffers of all
// reachable tensors that require gradients.
func (t *Tensor) Backward() {
	if t.Size() != 1 {
		panic(fmt.Sprintf("autograd: Backward on non-scalar %dx%d tensor", t.Rows, t.Cols))
	}
	t.ensureGrad()
	t.Grad[0] = 1

	// Topologically order the graph, then replay in reverse so each
	// node's gradient is complete before it propagates to its parents.
	// The post-order DFS uses an explicit stack: a recursive walk
	// overflows the goroutine stack on the very deep graphs produced
	// by long inner-loop chains, which is a fatal error Go cannot
	// recover from. Traversal order matches the recursive version
	// exactly (mark on push, emit after all children), preserving the
	// gradient accumulation order bit for bit.
	var order []*Tensor
	visited := map[*Tensor]bool{t: true}
	type frame struct {
		n   *Tensor
		idx int // next parent to descend into
	}
	stack := []frame{{n: t}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(f.n.parents) {
			p := f.n.parents[f.idx]
			f.idx++
			if !visited[p] {
				visited[p] = true
				stack = append(stack, frame{n: p})
			}
			continue
		}
		order = append(order, f.n)
		stack = stack[:len(stack)-1]
	}

	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil {
			for _, p := range n.parents {
				// Interior nodes need Grad as conduits and trainable
				// leaves accumulate into it; plain data leaves are
				// left nil so their ops skip the wasted accumulation.
				if p.requiresGrad || p.parents != nil {
					p.ensureGrad()
				}
			}
			n.backward()
		}
	}
}

// Release walks the graph rooted at t and returns every op-result
// tensor's Data and Grad buffer to the kernels arena, then severs the
// graph edges. Leaves — parameters and caller-constructed inputs —
// are never touched. Call it once the step's outputs have been read
// (after Item/Backward/optimizer); the released tensors, and any
// Detach views of interior nodes, must not be used afterwards.
// Releasing finished graphs makes steady-state training and serving
// allocation-free in the op hot path.
func (t *Tensor) Release() {
	if !t.pooled && t.parents == nil {
		return
	}
	seen := map[*Tensor]bool{t: true}
	stack := []*Tensor{t}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range n.parents {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
		if n.pooled {
			kernels.Put(n.Data)
			n.Data = nil
			if n.Grad != nil {
				kernels.Put(n.Grad)
				n.Grad = nil
			}
			n.pooled = false
		}
		n.parents = nil
		n.backward = nil
	}
}

// Detach returns a view of the tensor's data with no graph history and no
// gradient tracking. The returned tensor shares the Data slice.
func (t *Tensor) Detach() *Tensor {
	return &Tensor{Rows: t.Rows, Cols: t.Cols, Data: t.Data}
}

// String renders a compact description of the tensor.
func (t *Tensor) String() string {
	if t.Size() == 1 {
		return fmt.Sprintf("Tensor(%g)", t.Data[0])
	}
	return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols)
}

func sameShape(a, b *Tensor) bool { return a.Rows == b.Rows && a.Cols == b.Cols }

func assertSameShape(op string, a, b *Tensor) {
	if !sameShape(a, b) {
		panic(fmt.Sprintf("autograd: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
