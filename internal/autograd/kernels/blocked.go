package kernels

// blocked is the default backend: the k (reduction) loop is split into
// panels of kc rows of b so the panel stays cache-resident while the a
// rows stream past, unrolled 4x to cut loop overhead, and the output
// rows are partitioned across goroutines. Per output element the
// reduction still runs ascending through a single accumulator, so
// results are bit-identical to the naive backend at any thread count.
type blocked struct{}

// kc is the k-panel height: one panel of b is kc×n float64s, sized to
// sit in L1/L2 for the layer widths used by the CTR models here.
const kc = 128

func (blocked) Name() string { return "blocked" }

func (blocked) GemmAdd(dst, a, b []float64, m, k, n int) {
	checkGemm(dst, a, b, m, k, n)
	parallelRows(m, k*n, func(lo, hi int) {
		gemmAddRange(dst, a, b, lo, hi, k, n)
	})
}

// gemmAddRange accumulates dst rows [lo,hi) of dst += a·b. The p loop
// is panel-blocked and 4x unrolled; every dst element receives its k
// contributions in ascending p order through a single accumulator.
func gemmAddRange(dst, a, b []float64, lo, hi, k, n int) {
	for kb := 0; kb < k; kb += kc {
		ke := kb + kc
		if ke > k {
			ke = k
		}
		for i := lo; i < hi; i++ {
			ar := a[i*k : (i+1)*k]
			or := dst[i*n : (i+1)*n]
			p := kb
			for ; p+4 <= ke; p += 4 {
				a0, a1, a2, a3 := ar[p], ar[p+1], ar[p+2], ar[p+3]
				b0 := b[p*n : (p+1)*n]
				b1 := b[(p+1)*n : (p+2)*n]
				b2 := b[(p+2)*n : (p+3)*n]
				b3 := b[(p+3)*n : (p+4)*n]
				for j := range or {
					s := or[j]
					s += a0 * b0[j]
					s += a1 * b1[j]
					s += a2 * b2[j]
					s += a3 * b3[j]
					or[j] = s
				}
			}
			for ; p < ke; p++ {
				av := ar[p]
				br := b[p*n : (p+1)*n]
				for j := range or {
					or[j] += av * br[j]
				}
			}
		}
	}
}

func (blocked) GemmABtAdd(dst, a, b []float64, m, n, k int) {
	checkGemm(dst, a, b, m, n, k) // dst m×k, a m×n, b k×n
	parallelRows(m, n*k, func(lo, hi int) {
		gemmABtAddRange(dst, a, b, lo, hi, n, k)
	})
}

// gemmABtAddRange accumulates dst rows [lo,hi) of dst += a·bᵀ. Four
// rows of b are dotted against one streaming row of a per pass; each
// dot is a single accumulator running ascending in j.
func gemmABtAddRange(dst, a, b []float64, lo, hi, n, k int) {
	for i := lo; i < hi; i++ {
		gr := a[i*n : (i+1)*n]
		dr := dst[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			b0 := b[p*n : (p+1)*n]
			b1 := b[(p+1)*n : (p+2)*n]
			b2 := b[(p+2)*n : (p+3)*n]
			b3 := b[(p+3)*n : (p+4)*n]
			var s0, s1, s2, s3 float64
			for j, g := range gr {
				s0 += g * b0[j]
				s1 += g * b1[j]
				s2 += g * b2[j]
				s3 += g * b3[j]
			}
			dr[p] += s0
			dr[p+1] += s1
			dr[p+2] += s2
			dr[p+3] += s3
		}
		for ; p < k; p++ {
			br := b[p*n : (p+1)*n]
			var s float64
			for j, g := range gr {
				s += g * br[j]
			}
			dr[p] += s
		}
	}
}

func (blocked) GemmAtBAdd(dst, a, g []float64, m, k, n int) {
	checkGemmT(dst, a, g, m, k, n) // dst k×n, a m×k, g m×n
	parallelRows(k, m*n, func(lo, hi int) {
		gemmAtBAddRange(dst, a, g, lo, hi, m, k, n)
	})
}

// gemmAtBAddRange accumulates dst rows [lo,hi) of dst += aᵀ·g, where
// dst rows are indexed by a's column p. Contributions arrive in
// ascending row order of a (the reduction axis), 4x unrolled with
// sequential adds so the per-element order matches the naive loop.
func gemmAtBAddRange(dst, a, g []float64, lo, hi, m, k, n int) {
	for p := lo; p < hi; p++ {
		dr := dst[p*n : (p+1)*n]
		i := 0
		for ; i+4 <= m; i += 4 {
			a0 := a[i*k+p]
			a1 := a[(i+1)*k+p]
			a2 := a[(i+2)*k+p]
			a3 := a[(i+3)*k+p]
			g0 := g[i*n : (i+1)*n]
			g1 := g[(i+1)*n : (i+2)*n]
			g2 := g[(i+2)*n : (i+3)*n]
			g3 := g[(i+3)*n : (i+4)*n]
			for j := range dr {
				s := dr[j]
				s += a0 * g0[j]
				s += a1 * g1[j]
				s += a2 * g2[j]
				s += a3 * g3[j]
				dr[j] = s
			}
		}
		for ; i < m; i++ {
			av := a[i*k+p]
			gi := g[i*n : (i+1)*n]
			for j := range dr {
				dr[j] += av * gi[j]
			}
		}
	}
}

func (blocked) DenseForward(dst, x, w, bias []float64, m, k, n int, act Act, slope float64) {
	checkGemm(dst, x, w, m, k, n)
	if bias != nil && len(bias) != n {
		panic("kernels: DenseForward bias length mismatch")
	}
	parallelRows(m, k*n+2*n, func(lo, hi int) {
		gemmAddRange(dst, x, w, lo, hi, k, n)
		biasActRange(dst, bias, lo, hi, n, act, slope)
	})
}

// biasActRange applies dst[i] = act(dst[i] + bias) to rows [lo,hi).
func biasActRange(dst, bias []float64, lo, hi, n int, act Act, slope float64) {
	for i := lo; i < hi; i++ {
		row := dst[i*n : (i+1)*n]
		if bias != nil {
			for j := range row {
				row[j] += bias[j]
			}
		}
		actInPlace(row, act, slope)
	}
}

func checkGemm(dst, a, b []float64, m, k, n int) {
	if len(dst) < m*n || len(a) < m*k || len(b) < k*n {
		panic("kernels: gemm buffer shorter than its shape")
	}
}

func checkGemmT(dst, a, g []float64, m, k, n int) {
	if len(dst) < k*n || len(a) < m*k || len(g) < m*n {
		panic("kernels: gemm buffer shorter than its shape")
	}
}
