// Package kernels provides the dense float64 math kernels behind the
// autograd tensor operations: cache-blocked, goroutine-parallel GEMM
// (forward and both backward products), a fused dense-layer forward
// (matmul + bias + activation in one pass), vectorized elementwise and
// reduction loops, and a sync.Pool buffer arena that removes per-op
// allocations from the training and serving hot loops.
//
// # Determinism contract
//
// Every backend must produce results bit-identical to straight-line
// evaluation: each output element is accumulated in exactly the order
// of the textbook triple loop (ascending reduction index, a single
// accumulator per element). Blocking and unrolling may regroup which
// elements are computed together, but never the addition order within
// one element; parallelism partitions output elements across
// goroutines, never the reduction of a single element. Consequently
// results do not depend on SetThreads, GOMAXPROCS, or the backend
// chosen, and the distributed bit-identity suites hold unchanged.
// (One caveat: when several NaNs combine, the propagated *payload* is
// chosen by the hardware per instruction operand order, which the
// compiler picks per expression — NaN is deterministic as a class,
// not as a bit pattern. Finite values and infinities are exact.)
//
// Kernels never skip zero operands: IEEE-754 says 0*Inf = NaN, so a
// "harmless" zero fast-path silently masks non-finite values from the
// loss and from the anomaly flight recorder. Non-finite inputs must
// poison the output, exactly as straight-line evaluation would.
package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Act selects the activation fused into DenseForward.
type Act int

// Fused activation kinds. ActLeakyReLU uses the slope passed alongside.
const (
	ActIdentity Act = iota
	ActReLU
	ActSigmoid
	ActTanh
	ActLeakyReLU
)

// Backend implements the dense float64 kernels. All matrices are
// row-major. Every product accumulates into dst (dst += ...), which is
// both the overwrite case (pass a zeroed dst — the arena's Get returns
// zeroed buffers) and the gradient-accumulation case. Accumulating
// into zero rather than overwriting keeps even the sign of zero
// bit-identical to straight-line evaluation (0 + -0 = +0).
type Backend interface {
	// Name identifies the backend ("blocked", "naive").
	Name() string
	// GemmAdd computes dst += a·b for a (m×k) and b (k×n).
	GemmAdd(dst, a, b []float64, m, k, n int)
	// GemmABtAdd computes dst += a·bᵀ for a (m×n) and b (k×n),
	// producing m×k. This is the dA += dOut·Bᵀ backward product.
	GemmABtAdd(dst, a, b []float64, m, n, k int)
	// GemmAtBAdd computes dst += aᵀ·g for a (m×k) and g (m×n),
	// producing k×n. This is the dB += Aᵀ·dOut backward product.
	GemmAtBAdd(dst, a, g []float64, m, k, n int)
	// DenseForward computes dst += x·w, then dst = act(dst + bias),
	// for x (m×k), w (k×n), and bias (len n, nil for no bias) in one
	// fused pass over a zeroed dst. slope is the LeakyReLU slope,
	// ignored by other activations.
	DenseForward(dst, x, w, bias []float64, m, k, n int, act Act, slope float64)
}

// Blocked is the default backend: k-panel blocked, 4x-unrolled,
// row-parallel kernels. Naive is the straight-line reference retained
// for differential testing.
var (
	Blocked Backend = blocked{}
	Naive   Backend = naive{}
)

// active is the backend used by the autograd ops.
var active atomic.Pointer[Backend]

// threads caps kernel parallelism; 0 means GOMAXPROCS.
var threads atomic.Int64

func init() {
	active.Store(&Blocked)
}

// Default returns the backend the autograd ops dispatch to.
func Default() Backend { return *active.Load() }

// Use installs b as the dispatch backend and returns the previous one.
// Results are bit-identical across backends; only speed changes.
func Use(b Backend) Backend {
	prev := *active.Load()
	active.Store(&b)
	return prev
}

// SetThreads caps the goroutines a single kernel may fan out to.
// n <= 0 restores the default (GOMAXPROCS at call time). Thread count
// never changes results, only wall-clock.
func SetThreads(n int) {
	if n < 0 {
		n = 0
	}
	threads.Store(int64(n))
}

// Threads reports the current parallelism cap.
func Threads() int {
	if n := int(threads.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelGrain is the minimum per-goroutine multiply-add count worth
// a goroutine spawn (~1µs of float64 FMAs); below it kernels run
// serially on the calling goroutine.
const parallelGrain = 16384

// parallelRows partitions [0, rows) into contiguous chunks and runs
// fn(lo, hi) for each, fanning out to at most Threads() goroutines.
// work is the multiply-add count per row. Each output element lives in
// exactly one chunk, so the partition never affects results.
func parallelRows(rows, work int, fn func(lo, hi int)) {
	nw := Threads()
	if nw > rows {
		nw = rows
	}
	if nw <= 1 || rows*work < 2*parallelGrain {
		fn(0, rows)
		return
	}
	if maxChunks := rows * work / parallelGrain; nw > maxChunks {
		nw = maxChunks
	}
	chunk := (rows + nw - 1) / nw
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
