package kernels

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// specials are the values whose handling separates a correct kernel
// from a fast-looking one: signed zeros breed sign flips, and
// Inf/NaN must poison products instead of being skipped.
var specials = []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 1e-308, -1e308}

func randMatrix(rng *rand.Rand, n int, withSpecials bool) []float64 {
	m := make([]float64, n)
	for i := range m {
		switch {
		case withSpecials && rng.Float64() < 0.08:
			m[i] = specials[rng.Intn(len(specials))]
		case rng.Float64() < 0.15:
			m[i] = 0 // post-ReLU activations are ~half zeros; keep the zero path hot
		default:
			m[i] = rng.NormFloat64()
		}
	}
	return m
}

// sameBits compares float slices bit for bit, except that NaNs compare
// as a class: when several NaN sources meet, the payload the hardware
// propagates depends on instruction operand order, which the compiler
// is free to pick per expression. Finite values and infinities — the
// determinism guarantee that matters for training — must match exactly.
func sameBits(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.IsNaN(got[i]) && math.IsNaN(want[i]) {
			continue
		}
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d: %x (%g) vs %x (%g)", label,
				i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

// TestBlockedMatchesNaive is the differential property test: on random
// shapes and values — including zeros, Inf, and NaN — the blocked
// parallel backend must be bit-identical to straight-line evaluation
// for all three GEMM products and the fused dense forward, at every
// thread count.
func TestBlockedMatchesNaive(t *testing.T) {
	defer SetThreads(0)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(50)
		k := 1 + rng.Intn(50)
		n := 1 + rng.Intn(50)
		withSpecials := trial%3 == 0
		a := randMatrix(rng, m*k, withSpecials)
		b := randMatrix(rng, k*n, withSpecials)
		g := randMatrix(rng, m*n, withSpecials)
		bias := randMatrix(rng, n, withSpecials)
		act := Act(rng.Intn(5))

		wantF := make([]float64, m*n)
		Naive.GemmAdd(wantF, a, b, m, k, n)
		wantA := make([]float64, m*k)
		Naive.GemmABtAdd(wantA, g, b, m, n, k)
		wantB := make([]float64, k*n)
		Naive.GemmAtBAdd(wantB, a, g, m, k, n)
		wantD := make([]float64, m*n)
		Naive.DenseForward(wantD, a, b, bias, m, k, n, act, 0.01)

		for _, threads := range []int{1, 2, 3, 8} {
			SetThreads(threads)
			gotF := make([]float64, m*n)
			Blocked.GemmAdd(gotF, a, b, m, k, n)
			sameBits(t, "GemmAdd", gotF, wantF)
			gotA := make([]float64, m*k)
			Blocked.GemmABtAdd(gotA, g, b, m, n, k)
			sameBits(t, "GemmABtAdd", gotA, wantA)
			gotB := make([]float64, k*n)
			Blocked.GemmAtBAdd(gotB, a, g, m, k, n)
			sameBits(t, "GemmAtBAdd", gotB, wantB)
			gotD := make([]float64, m*n)
			Blocked.DenseForward(gotD, a, b, bias, m, k, n, act, 0.01)
			sameBits(t, "DenseForward", gotD, wantD)
		}
	}
}

// TestGemmAddAccumulates pins the += contract: products accumulate on
// top of existing dst contents.
func TestGemmAddAccumulates(t *testing.T) {
	dst := []float64{10, 20, 30, 40}
	Blocked.GemmAdd(dst, []float64{1, 2, 3, 4}, []float64{1, 0, 0, 1}, 2, 2, 2)
	want := []float64{11, 22, 33, 44}
	sameBits(t, "accumulate", dst, want)
}

// TestNoZeroSkip pins the bugfix this package was introduced for: a
// zero in a must not skip the multiply against a non-finite row of b,
// because 0×Inf = NaN. The pre-kernel MatMul had an `av == 0` fast
// path that silently masked poisoned parameters from the loss.
func TestNoZeroSkip(t *testing.T) {
	for _, be := range []Backend{Blocked, Naive} {
		dst := make([]float64, 1)
		be.GemmAdd(dst, []float64{0, 1}, []float64{math.Inf(1), 5}, 1, 2, 1)
		if !math.IsNaN(dst[0]) {
			t.Fatalf("%s: 0*Inf + 1*5 = %g, want NaN (zero-skip is back?)", be.Name(), dst[0])
		}
		dB := make([]float64, 2)
		be.GemmAtBAdd(dB, []float64{0, 1}, []float64{math.Inf(1)}, 1, 2, 1)
		if !math.IsNaN(dB[0]) {
			t.Fatalf("%s: dB = 0*Inf = %g, want NaN", be.Name(), dB[0])
		}
	}
}

// TestParallelGemmConcurrent hammers the parallel kernels from many
// goroutines at once (run under -race in CI): workers share the inputs
// read-only and own their outputs, so the only sharing inside a kernel
// is the row partition.
func TestParallelGemmConcurrent(t *testing.T) {
	SetThreads(8)
	defer SetThreads(0)
	rng := rand.New(rand.NewSource(7))
	const m, k, n = 96, 64, 80
	a := randMatrix(rng, m*k, false)
	b := randMatrix(rng, k*n, false)
	want := make([]float64, m*n)
	Naive.GemmAdd(want, a, b, m, k, n)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				got := make([]float64, m*n)
				Blocked.GemmAdd(got, a, b, m, k, n)
				sameBits(t, "concurrent GemmAdd", got, want)
			}
		}()
	}
	wg.Wait()
}

func TestPoolGetZeroedAndRecycled(t *testing.T) {
	buf := Get(100)
	if len(buf) != 100 {
		t.Fatalf("Get(100) len %d", len(buf))
	}
	for i := range buf {
		buf[i] = float64(i + 1)
	}
	Put(buf)
	again := Get(100)
	for i, v := range again {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %g", i, v)
		}
	}
	Put(again)
	// Non-pool-shaped slices must be silently dropped, never pooled.
	Put(make([]float64, 100)) // cap 100 is not a size class
	if got := Get(0); got != nil {
		t.Fatalf("Get(0) = %v, want nil", got)
	}
}

func TestSumAndDotMatchStraightLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(100)
		a := randMatrix(rng, n, trial%2 == 0)
		b := randMatrix(rng, n, trial%2 == 0)
		var ws, wd float64
		for i := 0; i < n; i++ {
			ws += a[i]
			wd += a[i] * b[i]
		}
		sameBits(t, "Sum", []float64{Sum(a)}, []float64{ws})
		sameBits(t, "Dot", []float64{Dot(a, b)}, []float64{wd})
	}
}
