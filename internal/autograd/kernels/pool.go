package kernels

import (
	"math/bits"
	"sync"
)

// The buffer arena: float64 scratch slices recycled through sync.Pool
// size classes (powers of two). Autograd op results draw their Data
// and Grad buffers from here and return them when a finished graph is
// released, so steady-state training and serving stop allocating per
// op. Get returns zeroed memory, exactly like make, so kernels that
// rely on zero initialization (accumulating GEMM, ReLU) need no
// special casing.

const (
	// minPoolClass is the smallest pooled class, 1<<5 = 32 elements;
	// smaller requests round up rather than fragmenting the pool.
	minPoolClass = 5
	// maxPoolClass caps pooling at 1<<21 elements (16 MiB); larger
	// buffers fall through to the garbage collector.
	maxPoolClass = 21
)

var pools [maxPoolClass + 1]sync.Pool

// Get returns a zeroed []float64 of length n, recycled from the arena
// when a buffer of n's size class is available.
func Get(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if c > maxPoolClass {
		return make([]float64, n)
	}
	if v := pools[c].Get(); v != nil {
		buf := (*v.(*[]float64))[:n]
		clear(buf)
		return buf
	}
	return make([]float64, n, 1<<c)
}

// Put returns a buffer obtained from Get to the arena. Buffers whose
// capacity is not an exact pooled size class (e.g. caller-allocated
// slices) are dropped, so Put is safe on any slice. The caller must
// not touch buf afterwards.
func Put(buf []float64) {
	c := sizeClass(cap(buf))
	if c < minPoolClass || c > maxPoolClass || cap(buf) != 1<<c {
		return
	}
	s := buf[:cap(buf)]
	pools[c].Put(&s)
}

// sizeClass returns the smallest c with 1<<c >= n, floored at
// minPoolClass.
func sizeClass(n int) int {
	c := bits.Len(uint(n - 1))
	if c < minPoolClass {
		c = minPoolClass
	}
	return c
}
