package kernels

import "math"

// Elementwise and reduction kernels shared by both backends. These are
// memory-bound, so "vectorized" here means tight range loops with the
// bounds checks hoisted and, for reductions, 4x unrolling that keeps a
// single accumulator adding in ascending index order (sequential adds
// through one register reassociate nothing, so results stay
// bit-identical to the straight loop).

// AddTo sets dst[i] = a[i] + b[i].
func AddTo(dst, a, b []float64) {
	b = b[:len(dst)]
	for i, av := range a[:len(dst)] {
		dst[i] = av + b[i]
	}
}

// SubTo sets dst[i] = a[i] - b[i].
func SubTo(dst, a, b []float64) {
	b = b[:len(dst)]
	for i, av := range a[:len(dst)] {
		dst[i] = av - b[i]
	}
}

// MulTo sets dst[i] = a[i] * b[i].
func MulTo(dst, a, b []float64) {
	b = b[:len(dst)]
	for i, av := range a[:len(dst)] {
		dst[i] = av * b[i]
	}
}

// ScaleTo sets dst[i] = a[i] * s.
func ScaleTo(dst, a []float64, s float64) {
	for i, av := range a[:len(dst)] {
		dst[i] = av * s
	}
}

// AddScalarTo sets dst[i] = a[i] + s.
func AddScalarTo(dst, a []float64, s float64) {
	for i, av := range a[:len(dst)] {
		dst[i] = av + s
	}
}

// AccumAdd accumulates dst[i] += g[i].
func AccumAdd(dst, g []float64) {
	for i, gv := range g[:len(dst)] {
		dst[i] += gv
	}
}

// AccumSub accumulates dst[i] -= g[i].
func AccumSub(dst, g []float64) {
	for i, gv := range g[:len(dst)] {
		dst[i] -= gv
	}
}

// AxpyAdd accumulates dst[i] += g[i] * s.
func AxpyAdd(dst, g []float64, s float64) {
	for i, gv := range g[:len(dst)] {
		dst[i] += gv * s
	}
}

// MulAdd accumulates dst[i] += g[i] * b[i].
func MulAdd(dst, g, b []float64) {
	b = b[:len(dst)]
	for i, gv := range g[:len(dst)] {
		dst[i] += gv * b[i]
	}
}

// Sum reduces a to a single value, accumulating in ascending order.
func Sum(a []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i]
		s += a[i+1]
		s += a[i+2]
		s += a[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i]
	}
	return s
}

// Dot reduces <a, b> with a single accumulator in ascending order.
func Dot(a, b []float64) float64 {
	b = b[:len(a)]
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// ColSumAdd accumulates the column sums of the m×n matrix a into dst
// (len n), row by row so each dst[j] sees ascending row order.
func ColSumAdd(dst, a []float64, m, n int) {
	dst = dst[:n]
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j := range dst {
			dst[j] += row[j]
		}
	}
}

// SigmoidTo sets dst[i] = 1/(1+exp(-a[i])).
func SigmoidTo(dst, a []float64) {
	for i, v := range a[:len(dst)] {
		dst[i] = 1 / (1 + math.Exp(-v))
	}
}

// DequantRowTo sets dst[i] = float64(q[i]) * float64(scale) — the int8
// symmetric-dequantization kernel behind quantized embedding snapshots
// (internal/quant). The scale widens to float64 before the multiply so
// decode is a single correctly-rounded operation per element.
func DequantRowTo(dst []float64, q []int8, scale float32) {
	s := float64(scale)
	for i, v := range q[:len(dst)] {
		dst[i] = float64(v) * s
	}
}

// ReLUTo sets dst[i] = a[i] when a[i] > 0 and 0 otherwise (dst need
// not be pre-zeroed).
func ReLUTo(dst, a []float64) {
	for i, v := range a[:len(dst)] {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// LeakyReLUTo sets dst[i] = a[i] when a[i] > 0 and slope*a[i] otherwise.
func LeakyReLUTo(dst, a []float64, slope float64) {
	for i, v := range a[:len(dst)] {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = slope * v
		}
	}
}

// TanhTo sets dst[i] = tanh(a[i]).
func TanhTo(dst, a []float64) {
	for i, v := range a[:len(dst)] {
		dst[i] = math.Tanh(v)
	}
}

// ExpTo sets dst[i] = exp(a[i]).
func ExpTo(dst, a []float64) {
	for i, v := range a[:len(dst)] {
		dst[i] = math.Exp(v)
	}
}

// SquareTo sets dst[i] = a[i]*a[i].
func SquareTo(dst, a []float64) {
	for i, v := range a[:len(dst)] {
		dst[i] = v * v
	}
}

// actInPlace applies the activation to row in place, with exactly the
// same expressions as the standalone autograd activation ops so the
// fused dense forward is bit-identical to the composed one.
func actInPlace(row []float64, act Act, slope float64) {
	switch act {
	case ActIdentity:
	case ActReLU:
		ReLUTo(row, row)
	case ActSigmoid:
		SigmoidTo(row, row)
	case ActTanh:
		TanhTo(row, row)
	case ActLeakyReLU:
		LeakyReLUTo(row, row, slope)
	default:
		panic("kernels: unknown activation")
	}
}

// ActGradTo sets dst[i] = g[i] * act' where out is the activation's
// *output* (every supported activation's derivative is
// recoverable from its output: the ReLU family preserves sign, and
// sigmoid/tanh derivatives are functions of the output). Expression
// order matches the standalone activation backward ops bit for bit.
func ActGradTo(dst, out, g []float64, act Act, slope float64) {
	out = out[:len(dst)]
	g = g[:len(dst)]
	switch act {
	case ActIdentity:
		copy(dst, g)
	case ActReLU:
		for i, s := range out {
			if s > 0 {
				dst[i] = g[i]
			} else {
				dst[i] = 0
			}
		}
	case ActSigmoid:
		for i, s := range out {
			dst[i] = g[i] * s * (1 - s)
		}
	case ActTanh:
		for i, s := range out {
			dst[i] = g[i] * (1 - s*s)
		}
	case ActLeakyReLU:
		for i, s := range out {
			if s > 0 {
				dst[i] = g[i]
			} else {
				dst[i] = g[i] * slope
			}
		}
	default:
		panic("kernels: unknown activation")
	}
}
