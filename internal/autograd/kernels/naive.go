package kernels

// naive is the straight-line reference backend: textbook triple loops,
// serial, no blocking or unrolling. It defines the bit pattern every
// other backend must reproduce and is kept for differential testing.
//
// Unlike the pre-kernel autograd loops it never skips zero operands:
// 0×Inf = NaN, and masking that is the bug this package exists to fix.
type naive struct{}

func (naive) Name() string { return "naive" }

func (naive) GemmAdd(dst, a, b []float64, m, k, n int) {
	checkGemm(dst, a, b, m, k, n)
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		or := dst[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			br := b[p*n : (p+1)*n]
			for j := range or {
				or[j] += av * br[j]
			}
		}
	}
}

func (naive) GemmABtAdd(dst, a, b []float64, m, n, k int) {
	checkGemm(dst, a, b, m, n, k)
	for i := 0; i < m; i++ {
		gr := a[i*n : (i+1)*n]
		dr := dst[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			br := b[p*n : (p+1)*n]
			var s float64
			for j, g := range gr {
				s += g * br[j]
			}
			dr[p] += s
		}
	}
}

func (naive) GemmAtBAdd(dst, a, g []float64, m, k, n int) {
	checkGemmT(dst, a, g, m, k, n)
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		gr := g[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			dr := dst[p*n : (p+1)*n]
			for j := range dr {
				dr[j] += av * gr[j]
			}
		}
	}
}

func (nv naive) DenseForward(dst, x, w, bias []float64, m, k, n int, act Act, slope float64) {
	checkGemm(dst, x, w, m, k, n)
	if bias != nil && len(bias) != n {
		panic("kernels: DenseForward bias length mismatch")
	}
	nv.GemmAdd(dst, x, w, m, k, n)
	biasActRange(dst, bias, 0, m, n, act, slope)
}
