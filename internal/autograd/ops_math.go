package autograd

import (
	"fmt"
	"math"

	"mamdr/internal/autograd/kernels"
)

// Sigmoid returns the elementwise logistic function 1/(1+exp(-x)).
func Sigmoid(a *Tensor) *Tensor {
	data := alloc(len(a.Data))
	kernels.SigmoidTo(data, a.Data)
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			// Same expression order as kernels.ActGradTo, so the
			// fused dense path and this op are bit-identical.
			for i, g := range out.Grad {
				s := data[i]
				a.Grad[i] += g * s * (1 - s)
			}
		}
	}
	return out
}

// ReLU returns max(x, 0) elementwise.
func ReLU(a *Tensor) *Tensor {
	data := alloc(len(a.Data))
	kernels.ReLUTo(data, a.Data)
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += g
				}
			}
		}
	}
	return out
}

// LeakyReLU returns x for x>0 and slope*x otherwise, elementwise.
func LeakyReLU(a *Tensor, slope float64) *Tensor {
	data := alloc(len(a.Data))
	kernels.LeakyReLUTo(data, a.Data, slope)
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += g
				} else {
					a.Grad[i] += g * slope
				}
			}
		}
	}
	return out
}

// Tanh returns the elementwise hyperbolic tangent.
func Tanh(a *Tensor) *Tensor {
	data := alloc(len(a.Data))
	kernels.TanhTo(data, a.Data)
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g * (1 - data[i]*data[i])
			}
		}
	}
	return out
}

// Exp returns e^x elementwise.
func Exp(a *Tensor) *Tensor {
	data := alloc(len(a.Data))
	kernels.ExpTo(data, a.Data)
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			kernels.MulAdd(a.Grad, out.Grad, data)
		}
	}
	return out
}

// Log returns the elementwise natural logarithm. Inputs are clamped to a
// small positive epsilon to keep the graph finite.
func Log(a *Tensor) *Tensor {
	const eps = 1e-12
	data := alloc(len(a.Data))
	for i, v := range a.Data {
		data[i] = math.Log(math.Max(v, eps))
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g / math.Max(a.Data[i], eps)
			}
		}
	}
	return out
}

// Square returns x*x elementwise.
func Square(a *Tensor) *Tensor {
	data := alloc(len(a.Data))
	kernels.SquareTo(data, a.Data)
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += 2 * g * a.Data[i]
			}
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax independently to each
// row of a.
func SoftmaxRows(a *Tensor) *Tensor {
	data := alloc(len(a.Data))
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		o := data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			o[j] = math.Exp(v - max)
			sum += o[j]
		}
		for j := range o {
			o[j] /= sum
		}
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad == nil {
			return
		}
		for i := 0; i < a.Rows; i++ {
			s := data[i*a.Cols : (i+1)*a.Cols]
			g := out.Grad[i*a.Cols : (i+1)*a.Cols]
			dot := kernels.Dot(s, g)
			ag := a.Grad[i*a.Cols : (i+1)*a.Cols]
			for j := range s {
				ag[j] += s[j] * (g[j] - dot)
			}
		}
	}
	return out
}

// Sum reduces all elements of a to a 1x1 scalar.
func Sum(a *Tensor) *Tensor {
	data := alloc(1)
	data[0] = kernels.Sum(a.Data)
	out := newResult(1, 1, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Mean reduces all elements of a to their arithmetic mean as a scalar.
// A zero-size input panics: dividing by zero would silently return
// ±Inf/NaN and poison everything downstream.
func Mean(a *Tensor) *Tensor {
	if a.Size() == 0 {
		panic(fmt.Sprintf("autograd: Mean of empty %dx%d tensor", a.Rows, a.Cols))
	}
	return Scale(Sum(a), 1/float64(a.Size()))
}

// SumRows reduces each row of the MxN tensor a to a single value,
// producing an Mx1 column.
func SumRows(a *Tensor) *Tensor {
	data := alloc(a.Rows)
	for i := 0; i < a.Rows; i++ {
		data[i] = kernels.Sum(a.Data[i*a.Cols : (i+1)*a.Cols])
	}
	out := newResult(a.Rows, 1, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i := 0; i < a.Rows; i++ {
				g := out.Grad[i]
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += g
				}
			}
		}
	}
	return out
}

// RowDot computes the per-row inner product of two MxN tensors,
// producing an Mx1 column: out[i] = <a[i,:], b[i,:]>.
func RowDot(a, b *Tensor) *Tensor {
	assertSameShape("RowDot", a, b)
	data := alloc(a.Rows)
	for i := 0; i < a.Rows; i++ {
		data[i] = kernels.Dot(a.Data[i*a.Cols:(i+1)*a.Cols], b.Data[i*a.Cols:(i+1)*a.Cols])
	}
	out := newResult(a.Rows, 1, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		for i := 0; i < a.Rows; i++ {
			g := out.Grad[i]
			if a.Grad != nil {
				kernels.AxpyAdd(a.Grad[i*a.Cols:(i+1)*a.Cols], b.Data[i*a.Cols:(i+1)*a.Cols], g)
			}
			if b.Grad != nil {
				kernels.AxpyAdd(b.Grad[i*a.Cols:(i+1)*a.Cols], a.Data[i*a.Cols:(i+1)*a.Cols], g)
			}
		}
	}
	return out
}
