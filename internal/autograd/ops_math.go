package autograd

import "math"

// Sigmoid returns the elementwise logistic function 1/(1+exp(-x)).
func Sigmoid(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		data[i] = 1 / (1 + math.Exp(-v))
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				s := data[i]
				a.Grad[i] += g * s * (1 - s)
			}
		}
	}
	return out
}

// ReLU returns max(x, 0) elementwise.
func ReLU(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		if v > 0 {
			data[i] = v
		}
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += g
				}
			}
		}
	}
	return out
}

// LeakyReLU returns x for x>0 and slope*x otherwise, elementwise.
func LeakyReLU(a *Tensor, slope float64) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		if v > 0 {
			data[i] = v
		} else {
			data[i] = slope * v
		}
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += g
				} else {
					a.Grad[i] += g * slope
				}
			}
		}
	}
	return out
}

// Tanh returns the elementwise hyperbolic tangent.
func Tanh(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		data[i] = math.Tanh(v)
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g * (1 - data[i]*data[i])
			}
		}
	}
	return out
}

// Exp returns e^x elementwise.
func Exp(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		data[i] = math.Exp(v)
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g * data[i]
			}
		}
	}
	return out
}

// Log returns the elementwise natural logarithm. Inputs are clamped to a
// small positive epsilon to keep the graph finite.
func Log(a *Tensor) *Tensor {
	const eps = 1e-12
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		data[i] = math.Log(math.Max(v, eps))
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += g / math.Max(a.Data[i], eps)
			}
		}
	}
	return out
}

// Square returns x*x elementwise.
func Square(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		data[i] = v * v
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i, g := range out.Grad {
				a.Grad[i] += 2 * g * a.Data[i]
			}
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax independently to each
// row of a.
func SoftmaxRows(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		o := data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			o[j] = math.Exp(v - max)
			sum += o[j]
		}
		for j := range o {
			o[j] /= sum
		}
	}
	out := newResult(a.Rows, a.Cols, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad == nil {
			return
		}
		for i := 0; i < a.Rows; i++ {
			s := data[i*a.Cols : (i+1)*a.Cols]
			g := out.Grad[i*a.Cols : (i+1)*a.Cols]
			var dot float64
			for j := range s {
				dot += s[j] * g[j]
			}
			ag := a.Grad[i*a.Cols : (i+1)*a.Cols]
			for j := range s {
				ag[j] += s[j] * (g[j] - dot)
			}
		}
	}
	return out
}

// Sum reduces all elements of a to a 1x1 scalar.
func Sum(a *Tensor) *Tensor {
	var s float64
	for _, v := range a.Data {
		s += v
	}
	out := newResult(1, 1, []float64{s}, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Mean reduces all elements of a to their arithmetic mean as a scalar.
func Mean(a *Tensor) *Tensor {
	return Scale(Sum(a), 1/float64(a.Size()))
}

// SumRows reduces each row of the MxN tensor a to a single value,
// producing an Mx1 column.
func SumRows(a *Tensor) *Tensor {
	data := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var s float64
		for j := 0; j < a.Cols; j++ {
			s += a.Data[i*a.Cols+j]
		}
		data[i] = s
	}
	out := newResult(a.Rows, 1, data, nil, a)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		if a.Grad != nil {
			for i := 0; i < a.Rows; i++ {
				g := out.Grad[i]
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += g
				}
			}
		}
	}
	return out
}

// RowDot computes the per-row inner product of two MxN tensors,
// producing an Mx1 column: out[i] = <a[i,:], b[i,:]>.
func RowDot(a, b *Tensor) *Tensor {
	assertSameShape("RowDot", a, b)
	data := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var s float64
		for j := 0; j < a.Cols; j++ {
			s += a.Data[i*a.Cols+j] * b.Data[i*a.Cols+j]
		}
		data[i] = s
	}
	out := newResult(a.Rows, 1, data, nil, a, b)
	if out.parents == nil {
		return out
	}
	out.backward = func() {
		for i := 0; i < a.Rows; i++ {
			g := out.Grad[i]
			for j := 0; j < a.Cols; j++ {
				if a.Grad != nil {
					a.Grad[i*a.Cols+j] += g * b.Data[i*a.Cols+j]
				}
				if b.Grad != nil {
					b.Grad[i*a.Cols+j] += g * a.Data[i*a.Cols+j]
				}
			}
		}
	}
	return out
}
