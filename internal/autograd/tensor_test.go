package autograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	New(2, 3, []float64{1, 2, 3})
}

func TestScalarItem(t *testing.T) {
	s := Scalar(4.25)
	if got := s.Item(); got != 4.25 {
		t.Fatalf("Item() = %g, want 4.25", got)
	}
}

func TestItemOnMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Item on matrix")
		}
	}()
	Zeros(2, 2).Item()
}

func TestBackwardOnNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Backward on matrix")
		}
	}()
	Zeros(2, 2).Backward()
}

func TestParamHasGradBuffer(t *testing.T) {
	p := ParamZeros(3, 4)
	if !p.RequiresGrad() {
		t.Fatal("Param should require grad")
	}
	if len(p.Grad) != 12 {
		t.Fatalf("grad buffer len = %d, want 12", len(p.Grad))
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Param(1, 2, []float64{1, 2})
	c := p.Clone()
	c.Data[0] = 99
	if p.Data[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
	if !c.RequiresGrad() {
		t.Fatal("Clone should preserve RequiresGrad")
	}
}

func TestDetachSharesDataButDropsGraph(t *testing.T) {
	a := Param(1, 2, []float64{1, 2})
	b := Scale(a, 2)
	d := b.Detach()
	if d.backward != nil || d.parents != nil || d.RequiresGrad() {
		t.Fatal("Detach must drop graph edges and grad tracking")
	}
	d.Data[0] = 7
	if b.Data[0] != 7 {
		t.Fatal("Detach should share underlying data")
	}
}

func TestBackwardSimpleChain(t *testing.T) {
	// loss = sum((2x)^2) with x = [1, -3]; dloss/dx = 8x.
	x := Param(1, 2, []float64{1, -3})
	loss := Sum(Square(Scale(x, 2)))
	loss.Backward()
	want := []float64{8, -24}
	for i, w := range want {
		if math.Abs(x.Grad[i]-w) > 1e-12 {
			t.Fatalf("grad[%d] = %g, want %g", i, x.Grad[i], w)
		}
	}
}

func TestBackwardDiamondAccumulates(t *testing.T) {
	// y = x + x: dy/dx = 2 through two paths.
	x := Param(1, 1, []float64{3})
	loss := Sum(Add(x, x))
	loss.Backward()
	if x.Grad[0] != 2 {
		t.Fatalf("diamond grad = %g, want 2", x.Grad[0])
	}
}

func TestBackwardReusedSubexpression(t *testing.T) {
	// z = x*x; loss = sum(z + z) = 2x^2; dloss/dx = 4x.
	x := Param(1, 1, []float64{5})
	z := Square(x)
	loss := Sum(Add(z, z))
	loss.Backward()
	if x.Grad[0] != 20 {
		t.Fatalf("reused-node grad = %g, want 20", x.Grad[0])
	}
}

func TestZeroGrad(t *testing.T) {
	x := Param(1, 1, []float64{2})
	Sum(Square(x)).Backward()
	if x.Grad[0] == 0 {
		t.Fatal("expected nonzero grad before ZeroGrad")
	}
	x.ZeroGrad()
	if x.Grad[0] != 0 {
		t.Fatal("ZeroGrad did not clear")
	}
}

func TestGradAccumulatesAcrossBackwardCalls(t *testing.T) {
	x := Param(1, 1, []float64{1})
	Sum(Scale(x, 3)).Backward()
	Sum(Scale(x, 3)).Backward()
	if x.Grad[0] != 6 {
		t.Fatalf("accumulated grad = %g, want 6", x.Grad[0])
	}
}

func TestConstantOpsBuildNoGraph(t *testing.T) {
	a := New(1, 2, []float64{1, 2})
	b := New(1, 2, []float64{3, 4})
	c := Add(a, b)
	if c.backward != nil || c.parents != nil || c.Grad != nil {
		t.Fatal("ops over constants must not build graph edges")
	}
}

func TestQuickCloneRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		tns := New(1, len(vals), vals)
		c := tns.Clone()
		for i := range vals {
			if c.Data[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParamRandWithinScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ParamRand(10, 10, 0.5, rng)
	for _, v := range p.Data {
		if v < -0.5 || v > 0.5 {
			t.Fatalf("value %g outside [-0.5, 0.5]", v)
		}
	}
}

func TestParamXavierBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, cols := 30, 20
	limit := math.Sqrt(6.0 / float64(rows+cols))
	p := ParamXavier(rows, cols, rng)
	for _, v := range p.Data {
		if math.Abs(v) > limit {
			t.Fatalf("xavier value %g outside limit %g", v, limit)
		}
	}
}
