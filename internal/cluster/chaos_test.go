package cluster

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mamdr/internal/autograd"
	"mamdr/internal/faultinject"
	"mamdr/internal/models"
	"mamdr/internal/ps"
	"mamdr/internal/telemetry"
)

// killAfter wraps one shard replica and simulates a server death: after
// `calls` data operations every further call panics, exactly as a
// ps.Client whose server vanished does once its retries are exhausted.
type killAfter struct {
	base      ps.Store
	remaining int64
}

func (k *killAfter) tick() {
	if atomic.AddInt64(&k.remaining, -1) < 0 {
		panic("chaos: injected shard-server death")
	}
}

func (k *killAfter) Layout() ps.Layout { return k.base.Layout() }
func (k *killAfter) PullDense(ctx context.Context) map[int][]float64 {
	k.tick()
	return k.base.PullDense(ctx)
}
func (k *killAfter) PullRows(ctx context.Context, tensor int, rows []int) [][]float64 {
	k.tick()
	return k.base.PullRows(ctx, tensor, rows)
}
func (k *killAfter) PushDelta(ctx context.Context, d ps.Delta) {
	k.tick()
	k.base.PushDelta(ctx, d)
}
func (k *killAfter) Counters() ps.Counters { return k.base.Counters() }

// TestShardFailoverMatchesCleanRun is the replicated-shard guarantee:
// with two replicas per shard, one shard's primary dying mid-training
// fails reads over to the backup — which saw every broadcast write, so
// it holds bit-identical state — and the run's final parameters match a
// clean single-server run exactly.
func TestShardFailoverMatchesCleanRun(t *testing.T) {
	ds := testDataset(t)
	factory := replicaFactory(ds)
	clean := ps.Train(factory, ds, deterministicOptions())

	serving := factory()
	tables := models.EmbeddingTablesOf(serving)
	plan := ps.NewPlan(ps.LayoutOf(serving.Parameters(), tables), 3, 7)
	servers := Shards(serving.Parameters(), plan, ShardOptions{
		Replicas: 2, OuterOpt: "adagrad", OuterLR: 0.1,
	})

	reg := telemetry.New()
	stores := make([][]ps.Store, len(servers))
	for sh, reps := range servers {
		for rep, srv := range reps {
			var ep ps.Store = srv
			if sh == 0 && rep == 0 {
				ep = &killAfter{base: srv, remaining: 40} // dies mid-epoch
			}
			stores[sh] = append(stores[sh], ep)
		}
	}
	router, err := New(plan, stores, Options{Metrics: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}

	res := ps.TrainWithStore(factory, serving, router, router, ds, deterministicOptions())

	if res.WorkerDeaths != 0 {
		t.Fatalf("failover leaked into worker deaths: %d", res.WorkerDeaths)
	}
	if got := router.LiveReplicas(0); got != 1 {
		t.Fatalf("shard 0 has %d live replicas, want 1 (primary condemned)", got)
	}
	requireSameVector(t, "failover vs clean", clean.State.Shared, res.State.Shared)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	expo := buf.String()
	for _, series := range []string{
		`mamdr_cluster_shard_failures_total{shard="0"} 1`,
		"mamdr_cluster_replica_deaths_total 1",
		`mamdr_cluster_failovers_total{shard="0"}`,
	} {
		if !strings.Contains(expo, series) {
			t.Fatalf("telemetry missing %q; exposition:\n%s", series, expo)
		}
	}
}

// TestShardLossWithoutReplicaFailsLoudly: with a single replica, losing
// a shard means a slice of the model is gone — the router must panic,
// never serve a partial parameter space.
func TestShardLossWithoutReplicaFailsLoudly(t *testing.T) {
	params := []*autograd.Tensor{autograd.ParamZeros(120, 4), autograd.ParamZeros(8, 8)}
	tables := map[int]int{0: 0}
	plan := ps.NewPlan(ps.LayoutOf(params, tables), 2, 7)
	servers := Shards(params, plan, ShardOptions{})
	stores := [][]ps.Store{
		{&killAfter{base: servers[0][0], remaining: 0}},
		{servers[1][0]},
	}
	router, err := New(plan, stores, Options{})
	if err != nil {
		t.Fatal(err)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("router served a pull with a dead, unreplicated shard")
		}
		if msg, ok := r.(error); !ok || !strings.Contains(msg.Error(), "failed on every replica") {
			t.Fatalf("panic does not name the exhausted shard: %v", r)
		}
	}()
	// Pull every embedding row: rendezvous hashing spreads them over
	// both shards, so the dead shard is guaranteed to be involved.
	rows := make([]int, 120)
	for i := range rows {
		rows[i] = i
	}
	router.PullRows(context.Background(), 0, rows)
}

// TestClusterChaosOverRPCBitIdentical is the sharded analogue of the ps
// package's headline chaos test: a 2-worker run against a 3-shard
// cluster over real sockets, each worker dialing every shard through
// its own fault-injected client, converges bit-identically to a clean
// single-server in-process run. Per-shard retries are idempotent
// because every split delta part carries the worker's (WorkerID, Seq)
// token and each shard server deduplicates independently.
func TestClusterChaosOverRPCBitIdentical(t *testing.T) {
	ds := testDataset(t)
	factory := replicaFactory(ds)
	clean := ps.Train(factory, ds, deterministicOptions())

	serving := factory()
	tables := models.EmbeddingTablesOf(serving)
	plan := ps.NewPlan(ps.LayoutOf(serving.Parameters(), tables), 3, 7)
	servers := Shards(serving.Parameters(), plan, ShardOptions{OuterOpt: "adagrad", OuterLR: 0.1})
	addrs, closeAll, err := ServeTCP(servers)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll()

	base, err := Dial(plan, addrs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var injectors []*faultinject.Injector
	opts := deterministicOptions()
	opts.WrapStore = func(workerID int, _ ps.Store) ps.Store {
		r, err := Dial(plan, addrs, func(sh, rep int, cl *ps.Client) {
			seed := int64(workerID*10 + sh)
			cl.SetBackoff(ps.Backoff{Attempts: 30, Base: time.Millisecond, Max: 4 * time.Millisecond, Seed: seed})
			inj := faultinject.MustParse(
				"PushDelta:err@p0.1; PullDense:err@p0.1; PullRows:delay=1ms@p0.05; conn:drop@4,9", seed)
			cl.SetInjector(inj)
			injectors = append(injectors, inj)
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	faulty := ps.TrainWithStore(factory, serving, base, base, ds, opts)

	var injected int64
	for _, inj := range injectors {
		for _, n := range inj.Counts() {
			injected += n
		}
	}
	if injected == 0 {
		t.Fatal("fault schedule injected nothing; the test is vacuous")
	}
	t.Logf("injected %d faults across %d shard clients; comparing final parameters", injected, len(injectors))
	requireSameVector(t, "cluster chaos vs clean", clean.State.Shared, faulty.State.Shared)
}
