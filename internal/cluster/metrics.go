package cluster

import (
	"strconv"
	"sync"

	"mamdr/internal/ps"
	"mamdr/internal/telemetry"
)

// Metrics mirrors the router's scatter-gather activity into a telemetry
// registry as per-shard time series: pull/push latency, floats moved,
// call failures and replica failovers per shard, plus the partition
// plan's static load figures (per-shard element counts and the
// imbalance gauge). Like ps.Metrics, every method is nil-receiver-safe,
// so the uninstrumented path costs nothing.
type Metrics struct {
	reg *telemetry.Registry

	replicaDeaths *telemetry.Counter
	imbalance     *telemetry.Gauge

	mu        sync.Mutex
	latency   map[string]*telemetry.Histogram // (shard, op) -> seconds
	floats    map[string]*telemetry.Counter   // (shard, op) -> floats moved
	failures  map[string]*telemetry.Counter   // shard -> failed replica calls
	failovers map[string]*telemetry.Counter   // shard -> reads retried on another replica
}

// NewMetrics registers the cluster series in reg. A nil registry yields
// a nil (disabled) Metrics.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg: reg,
		replicaDeaths: reg.Counter("mamdr_cluster_replica_deaths_total",
			"Shard replicas the router condemned after a failed call (no longer served reads or writes)."),
		imbalance: reg.Gauge("mamdr_cluster_imbalance_ratio",
			"Largest shard's element count over the mean (1.0 = perfectly balanced partition plan)."),
		latency:   map[string]*telemetry.Histogram{},
		floats:    map[string]*telemetry.Counter{},
		failures:  map[string]*telemetry.Counter{},
		failovers: map[string]*telemetry.Counter{},
	}
}

// BindPlan exports the partition plan's static load shape: the
// imbalance gauge and one element-count gauge per shard.
func (m *Metrics) BindPlan(p ps.Plan) {
	if m == nil {
		return
	}
	m.imbalance.Set(p.Imbalance())
	for sh := 0; sh < p.NumShards; sh++ {
		m.reg.Gauge("mamdr_cluster_shard_elements",
			"Float64 elements owned by each parameter-server shard under the partition plan.",
			telemetry.L("shard", strconv.Itoa(sh))).Set(float64(p.Elements(sh)))
	}
}

// observeShardOp records one completed shard call: its latency and the
// floats it moved, labeled by shard and operation (pull_dense,
// pull_rows, push_delta).
func (m *Metrics) observeShardOp(sh int, op string, seconds float64, floats int) {
	if m == nil {
		return
	}
	shard := strconv.Itoa(sh)
	key := shard + "/" + op
	m.mu.Lock()
	h, ok := m.latency[key]
	if !ok {
		h = m.reg.Histogram("mamdr_cluster_shard_op_seconds",
			"Latency of scatter-gather calls to each parameter-server shard, by operation.",
			telemetry.ExponentialBuckets(1e-5, 2, 16),
			telemetry.L("shard", shard), telemetry.L("op", op))
		m.latency[key] = h
	}
	c, ok := m.floats[key]
	if !ok {
		c = m.reg.Counter("mamdr_cluster_shard_floats_total",
			"Float64 values moved to or from each parameter-server shard, by operation.",
			telemetry.L("shard", shard), telemetry.L("op", op))
		m.floats[key] = c
	}
	m.mu.Unlock()
	h.Observe(seconds)
	c.Add(int64(floats))
}

// observeFailure counts one failed call to a replica of shard sh.
func (m *Metrics) observeFailure(sh int) {
	if m == nil {
		return
	}
	shard := strconv.Itoa(sh)
	m.mu.Lock()
	c, ok := m.failures[shard]
	if !ok {
		c = m.reg.Counter("mamdr_cluster_shard_failures_total",
			"Failed calls to a shard replica (each condemns that replica).",
			telemetry.L("shard", shard))
		m.failures[shard] = c
	}
	m.mu.Unlock()
	c.Inc()
	m.replicaDeaths.Inc()
}

// observeFailover counts one read that had to move past a dead or
// failing replica of shard sh.
func (m *Metrics) observeFailover(sh int) {
	if m == nil {
		return
	}
	shard := strconv.Itoa(sh)
	m.mu.Lock()
	c, ok := m.failovers[shard]
	if !ok {
		c = m.reg.Counter("mamdr_cluster_failovers_total",
			"Reads served by a backup replica after the shard's primary failed.",
			telemetry.L("shard", shard))
		m.failovers[shard] = c
	}
	m.mu.Unlock()
	c.Inc()
}
