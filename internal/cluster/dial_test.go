package cluster

import (
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mamdr/internal/autograd"
	"mamdr/internal/ps"
)

func dialTestPlan() ([]*autograd.Tensor, ps.Plan) {
	params := []*autograd.Tensor{autograd.ParamZeros(60, 4), autograd.ParamZeros(6, 6)}
	for t, p := range params {
		for i := range p.Data {
			p.Data[i] = float64(t*1000 + i)
		}
	}
	plan := ps.NewPlan(ps.LayoutOf(params, map[int]int{0: 0}), 2, 7)
	return params, plan
}

// TestTrySnapshotDegradesInsteadOfPanicking: Snapshot panics when a
// whole shard is gone (training must abort), but the serving path calls
// TrySnapshot and gets an error it can degrade on — while against a
// healthy cluster TrySnapshot returns exactly what Snapshot would.
func TestTrySnapshotDegradesInsteadOfPanicking(t *testing.T) {
	params, plan := dialTestPlan()
	servers := Shards(params, plan, ShardOptions{})

	healthy, err := New(plan, [][]ps.Store{{servers[0][0]}, {servers[1][0]}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := healthy.Snapshot()
	got, err := healthy.TrySnapshot()
	if err != nil {
		t.Fatalf("TrySnapshot on a healthy cluster: %v", err)
	}
	requireSameVector(t, "TrySnapshot vs Snapshot", want, got)

	broken, err := New(plan, [][]ps.Store{
		{&killAfter{base: servers[0][0], remaining: 0}},
		{servers[1][0]},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := broken.TrySnapshot()
	if err == nil || v != nil {
		t.Fatalf("TrySnapshot with a dead shard: v=%v err=%v, want error", v, err)
	}
	if !strings.Contains(err.Error(), "failed on every replica") {
		t.Fatalf("error does not name the exhausted shard: %v", err)
	}
}

// TestDialSnapshotRetriesUntilClusterUp is satellite-1's property: a
// serve process racing its cluster at startup must not die on the first
// connection refusal. The shard listeners only come up during the first
// backoff sleep (injected Sleep hook), so attempt 1 is guaranteed to
// fail and a later attempt is guaranteed to succeed — deterministically,
// no wall-clock sleeps.
func TestDialSnapshotRetriesUntilClusterUp(t *testing.T) {
	params, plan := dialTestPlan()
	servers := Shards(params, plan, ShardOptions{})

	// Reserve loopback ports, then free them: the dial target exists but
	// refuses connections until the backoff hook starts the servers.
	addrs := make([][]string, len(servers))
	for sh := range servers {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[sh] = []string{lis.Addr().String()}
		lis.Close()
	}

	var started atomic.Bool
	var closeAll func()
	bo := ps.Backoff{
		Attempts: 4, Base: time.Millisecond, Max: time.Millisecond, Seed: 1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if started.CompareAndSwap(false, true) {
				for sh, srvs := range servers {
					lis, err := net.Listen("tcp", addrs[sh][0])
					if err != nil {
						t.Errorf("rebind %s: %v", addrs[sh][0], err)
						return err
					}
					prev := closeAll
					closeAll = func() {
						lis.Close()
						if prev != nil {
							prev()
						}
					}
					go ps.Serve(srvs[0], lis)
				}
			}
			return nil
		},
	}

	router, snap, err := DialSnapshot(context.Background(), plan, addrs, nil, Options{}, bo)
	if err != nil {
		t.Fatalf("DialSnapshot: %v", err)
	}
	defer router.Close()
	defer closeAll()
	if !started.Load() {
		t.Fatal("first dial attempt succeeded against closed listeners")
	}

	local, err := New(plan, [][]ps.Store{{servers[0][0]}, {servers[1][0]}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameVector(t, "retried snapshot vs direct", local.Snapshot(), snap)

	// The dialed cluster also answers probes, side-effect-free.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := router.TryPing(ctx); err != nil {
		t.Fatalf("TryPing on a live cluster: %v", err)
	}
}

// TestDialSnapshotExhaustsBudget: a cluster that never comes up fails
// after exactly the configured attempt budget, with the last dial error
// preserved — not a hang, not a panic.
func TestDialSnapshotExhaustsBudget(t *testing.T) {
	_, plan := dialTestPlan()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := lis.Addr().String()
	lis.Close()

	sleeps := 0
	bo := ps.Backoff{
		Attempts: 3, Base: time.Millisecond, Max: time.Millisecond, Seed: 1,
		Sleep: func(ctx context.Context, d time.Duration) error { sleeps++; return nil },
	}
	_, _, err = DialSnapshot(context.Background(), plan, [][]string{{dead}, {dead}}, nil, Options{}, bo)
	if err == nil {
		t.Fatal("DialSnapshot succeeded against a dead address")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error does not report the attempt budget: %v", err)
	}
	if sleeps != 2 {
		t.Fatalf("slept %d times between 3 attempts, want 2", sleeps)
	}
}
