package cluster

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"mamdr/internal/autograd"
	"mamdr/internal/data"
	"mamdr/internal/models"
	"mamdr/internal/paramvec"
	"mamdr/internal/ps"
	"mamdr/internal/synth"
)

func testDataset(t testing.TB) *data.Dataset {
	t.Helper()
	return synth.Generate(synth.Config{
		Name: "cluster-test", Seed: 51, ConflictStrength: 0.8,
		Domains: []synth.DomainSpec{
			{Name: "a", Samples: 500, CTRRatio: 0.3},
			{Name: "b", Samples: 400, CTRRatio: 0.4},
			{Name: "c", Samples: 300, CTRRatio: 0.25},
			{Name: "d", Samples: 200, CTRRatio: 0.35},
		},
	})
}

func replicaFactory(ds *data.Dataset) func() models.Model {
	return func() models.Model {
		return models.MustNew("mlp", models.Config{Dataset: ds, EmbDim: 4, Hidden: []int{16, 8}, Seed: 5})
	}
}

// deterministicOptions mirrors the ps chaos suite's configuration:
// SyncPush fixes the delta-apply order, so two runs that should agree
// must agree float for float.
func deterministicOptions() ps.Options {
	return ps.Options{
		Workers: 2, Shards: 2, Epochs: 3, Seed: 9,
		CacheEnabled: true, SyncPush: true,
		OuterOpt: "adagrad", OuterLR: 0.1,
	}
}

func requireSameVector(t *testing.T, name string, a, b paramvec.Vector) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: tensor count %d vs %d", name, len(a), len(b))
	}
	for ti := range a {
		if len(a[ti]) != len(b[ti]) {
			t.Fatalf("%s: tensor %d size %d vs %d", name, ti, len(a[ti]), len(b[ti]))
		}
		for j := range a[ti] {
			if a[ti][j] != b[ti][j] {
				t.Fatalf("%s: tensor %d[%d] = %g vs %g (must be bit-identical)",
					name, ti, j, a[ti][j], b[ti][j])
			}
		}
	}
}

// newLocalFor partitions a fresh serving model across shards and wires
// the in-process cluster the tests train against.
func newLocalFor(serving models.Model, shards, replicas int, so ShardOptions) *Local {
	tables := models.EmbeddingTablesOf(serving)
	layout := ps.LayoutOf(serving.Parameters(), tables)
	plan := ps.NewPlan(layout, shards, 7)
	so.Replicas = replicas
	return NewLocal(serving.Parameters(), plan, so, Options{})
}

// TestClusterTrainingBitIdenticalAcrossShardCounts is the tentpole
// property: the partition plan is a pure function of the layout, every
// shard applies the same elementwise updates a single server would, and
// SyncPush fixes the apply order — so training against 1 shard and
// against 4 shards produces exactly the same parameters, and the
// router's logical counters match the single server's numbers.
func TestClusterTrainingBitIdenticalAcrossShardCounts(t *testing.T) {
	ds := testDataset(t)
	factory := replicaFactory(ds)

	clean := ps.Train(factory, ds, deterministicOptions())

	run := func(shards int) *ps.Result {
		serving := factory()
		local := newLocalFor(serving, shards, 1, ShardOptions{OuterOpt: "adagrad", OuterLR: 0.1})
		return ps.TrainWithStore(factory, serving, local.Router, local.Router, ds, deterministicOptions())
	}
	one := run(1)
	four := run(4)

	requireSameVector(t, "1-shard cluster vs single server", clean.State.Shared, one.State.Shared)
	requireSameVector(t, "4-shard cluster vs single server", clean.State.Shared, four.State.Shared)

	// The router reports logical traffic, so the sharded run's
	// synchronization-overhead numbers are comparable to the single
	// server's.
	if clean.Counters != four.Counters {
		t.Fatalf("logical counters diverge:\nsingle  %+v\n4-shard %+v", clean.Counters, four.Counters)
	}
}

// TestRouterMatchesSingleServerOps drives the Store surface directly —
// interleaved pulls and pushes — against a 3-shard router and a plain
// server, and requires identical replies throughout.
func TestRouterMatchesSingleServerOps(t *testing.T) {
	params := []*autograd.Tensor{
		autograd.ParamZeros(200, 4), // embedding, field 0
		autograd.ParamZeros(24, 8),  // dense
		autograd.ParamZeros(150, 6), // embedding, field 1
		autograd.ParamZeros(1, 8),   // dense
	}
	for i, p := range params {
		for j := range p.Data {
			p.Data[j] = float64(i*1000 + j)
		}
	}
	tables := map[int]int{0: 0, 2: 1}
	single := ps.NewServer(params, tables, 2, "adagrad", 0.5)
	plan := ps.NewPlan(ps.LayoutOf(params, tables), 3, 7)
	local := NewLocal(params, plan, ShardOptions{OuterOpt: "adagrad", OuterLR: 0.5}, Options{Parallelism: 2})

	ctx := context.Background()
	rows0 := []int{5, 199, 0, 42, 7, 5} // duplicates and out-of-order on purpose
	rows2 := []int{149, 3, 80}
	delta := func(seq int64) ps.Delta {
		wide := make([]float64, 24*8)
		for i := range wide {
			wide[i] = float64(seq)
		}
		return ps.Delta{
			WorkerID: 1, Seq: seq,
			Dense: map[int][]float64{1: wide, 3: {1, 2, 3, 4, 5, 6, 7, 8}},
			Rows:  map[int][]int{0: {5, 42}, 2: {149}},
			RowDeltas: map[int][][]float64{
				0: {{1, 1, 1, 1}, {2, 2, 2, 2}},
				2: {{3, 3, 3, 3, 3, 3}},
			},
		}
	}
	for seq := int64(1); seq <= 3; seq++ {
		single.PushDelta(ctx, delta(seq))
		local.Router.PushDelta(ctx, delta(seq))
		// Re-sending the same seq must be a no-op on every shard.
		local.Router.PushDelta(ctx, delta(seq))

		compareDense(t, single.PullDense(ctx), local.Router.PullDense(ctx))
		compareRows(t, single.PullRows(ctx, 0, rows0), local.Router.PullRows(ctx, 0, rows0))
		compareRows(t, single.PullRows(ctx, 2, rows2), local.Router.PullRows(ctx, 2, rows2))
	}

	// The reassembled snapshot matches the single server's too.
	requireSameVector(t, "snapshot", single.Snapshot(), local.Snapshot())
}

func compareDense(t *testing.T, want, got map[int][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("dense pull returned %d tensors, want %d", len(got), len(want))
	}
	for tensor, w := range want {
		g, ok := got[tensor]
		if !ok {
			t.Fatalf("dense pull missing tensor %d", tensor)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("dense tensor %d[%d] = %g, want %g", tensor, i, g[i], w[i])
			}
		}
	}
}

func compareRows(t *testing.T, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row pull returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("row %d[%d] = %g, want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestNewRejectsMismatchedEndpoints: a shard serving the wrong slice of
// the parameter space must be rejected at construction, not discovered
// as a training desync.
func TestNewRejectsMismatchedEndpoints(t *testing.T) {
	params := []*autograd.Tensor{
		autograd.ParamZeros(120, 4),
		autograd.ParamZeros(8, 8),
	}
	tables := map[int]int{0: 0}
	layout := ps.LayoutOf(params, tables)
	plan := ps.NewPlan(layout, 2, 7)
	other := ps.NewPlan(layout, 2, 8) // different seed -> different slices

	good := Shards(params, plan, ShardOptions{})
	bad := Shards(params, other, ShardOptions{})

	if _, err := New(plan, [][]ps.Store{{bad[0][0]}, {bad[1][0]}}, Options{}); err == nil {
		t.Fatal("router accepted endpoints partitioned under a different plan")
	}
	if _, err := New(plan, [][]ps.Store{{good[0][0]}}, Options{}); err == nil {
		t.Fatal("router accepted too few endpoint groups")
	}
	if _, err := New(plan, [][]ps.Store{{good[0][0]}, {}}, Options{}); err == nil {
		t.Fatal("router accepted a shard with no endpoints")
	}
	if _, err := New(plan, [][]ps.Store{{good[0][0]}, {good[1][0]}}, Options{}); err != nil {
		t.Fatalf("router rejected matching endpoints: %v", err)
	}
}

// TestClusterCheckpointRoundTrip: every shard persists its slice to its
// own file, a fresh cluster restores from them, and mixed per-shard
// epochs are rejected as a torn checkpoint.
func TestClusterCheckpointRoundTrip(t *testing.T) {
	params := []*autograd.Tensor{
		autograd.ParamZeros(120, 4),
		autograd.ParamZeros(8, 8),
	}
	for i, p := range params {
		for j := range p.Data {
			p.Data[j] = float64(i + j)
		}
	}
	tables := map[int]int{0: 0}
	plan := ps.NewPlan(ps.LayoutOf(params, tables), 3, 7)
	base := filepath.Join(t.TempDir(), "cluster.ckpt")
	so := ShardOptions{OuterOpt: "adagrad", OuterLR: 0.5, CheckpointPath: base}

	local := NewLocal(params, plan, so, Options{})
	if epoch, err := local.Router.LoadCheckpoint(); err != nil || epoch != -1 {
		t.Fatalf("fresh cluster LoadCheckpoint = (%d, %v), want (-1, nil)", epoch, err)
	}

	local.Router.PushDelta(context.Background(), ps.Delta{
		Dense: map[int][]float64{1: {1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2,
			3, 3, 3, 3, 3, 3, 3, 3, 4, 4, 4, 4, 4, 4, 4, 4,
			5, 5, 5, 5, 5, 5, 5, 5, 6, 6, 6, 6, 6, 6, 6, 6,
			7, 7, 7, 7, 7, 7, 7, 7, 8, 8, 8, 8, 8, 8, 8, 8}},
		Rows:      map[int][]int{0: {3, 77, 119}},
		RowDeltas: map[int][][]float64{0: {{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}}},
	})
	want := local.Snapshot()
	if err := local.Router.SaveCheckpoint(2); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	restored := NewLocal(params, plan, so, Options{})
	epoch, err := restored.Router.LoadCheckpoint()
	if err != nil || epoch != 2 {
		t.Fatalf("LoadCheckpoint = (%d, %v), want (2, nil)", epoch, err)
	}
	requireSameVector(t, "restored cluster", want, restored.Snapshot())

	// Tear the checkpoint: one shard re-saves at a later epoch. The
	// cluster must refuse to restore from mixed epochs.
	if err := restored.Servers[1][0].SaveCheckpoint(5); err != nil {
		t.Fatal(err)
	}
	torn := NewLocal(params, plan, so, Options{})
	if _, err := torn.Router.LoadCheckpoint(); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn checkpoint not rejected: %v", err)
	}
}
