package cluster

import (
	"fmt"
	"strings"
	"testing"

	"mamdr/internal/models"
	"mamdr/internal/obsv"
	"mamdr/internal/ps"
	"mamdr/internal/telemetry"
	"mamdr/internal/telemetry/promtest"
)

// TestFederatedSnapshotEqualsPerProcessRegistries is the federation
// acceptance test: train over real sockets against a multi-shard
// cluster where every shard server owns its own registry (one registry
// per process, exactly as a deployed fleet), scrape each shard through
// the gob-RPC MetricsSnapshot surface, and require the aggregated
// fleet view to equal — byte for byte in the rendered exposition — the
// aggregate computed directly from the in-process registries. Nothing
// may be lost, duplicated, or rounded on the wire.
func TestFederatedSnapshotEqualsPerProcessRegistries(t *testing.T) {
	ds := testDataset(t)
	factory := replicaFactory(ds)

	serving := factory()
	tables := models.EmbeddingTablesOf(serving)
	plan := ps.NewPlan(ps.LayoutOf(serving.Parameters(), tables), 3, 7)
	servers := Shards(serving.Parameters(), plan, ShardOptions{OuterOpt: "adagrad", OuterLR: 0.1})

	// One registry per shard server — the per-process topology.
	var regs []*telemetry.Registry
	for _, reps := range servers {
		for _, srv := range reps {
			reg := telemetry.New()
			srv.SetMetrics(ps.NewMetrics(reg))
			regs = append(regs, reg)
		}
	}

	addrs, closeAll, err := ServeTCP(servers)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll()

	router, err := Dial(plan, addrs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps.TrainWithStore(factory, serving, router, router, ds, deterministicOptions())

	// Scrape every shard over the same RPC sockets the workers used.
	var targets []obsv.Target
	for _, reps := range addrs {
		for _, a := range reps {
			targets = append(targets, obsv.Target{Role: "ps", Addr: "rpc://" + a})
		}
	}
	var scraped []telemetry.RegistrySnapshot
	for _, r := range (obsv.Scraper{}).ScrapeAll(targets) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		scraped = append(scraped, r.Snap)
	}
	if len(scraped) != len(regs) {
		t.Fatalf("scraped %d instances, want %d", len(scraped), len(regs))
	}

	// The federated per-instance exposition must satisfy the same
	// line-validation contract as a single process's /metrics.
	fleet, err := obsv.Federate(scraped)
	if err != nil {
		t.Fatal(err)
	}
	var fedText strings.Builder
	if err := fleet.WritePrometheus(&fedText); err != nil {
		t.Fatal(err)
	}
	promtest.Validate(t, fedText.String())

	// Aggregate the wire-scraped snapshots and the in-process
	// registries independently; the rendered totals must be identical.
	agg, err := obsv.Aggregate(scraped)
	if err != nil {
		t.Fatal(err)
	}
	var direct []telemetry.RegistrySnapshot
	for i, reg := range regs {
		s := reg.Snapshot()
		s.Role, s.Instance = "ps", fmt.Sprintf("direct-%d", i)
		direct = append(direct, s)
	}
	want, err := obsv.Aggregate(direct)
	if err != nil {
		t.Fatal(err)
	}
	var gotText, wantText strings.Builder
	if err := obsv.WriteFamilies(&gotText, agg); err != nil {
		t.Fatal(err)
	}
	if err := obsv.WriteFamilies(&wantText, want); err != nil {
		t.Fatal(err)
	}
	if gotText.String() != wantText.String() {
		t.Fatalf("federated aggregate diverges from per-process registries:\n--- scraped\n%s\n--- direct\n%s",
			gotText.String(), wantText.String())
	}
	if !strings.Contains(gotText.String(), "mamdr_ps_dense_pulls_total") {
		t.Fatal("aggregate carries no PS traffic; the training run was not observed")
	}

	// Spot-check the summation semantics on one counter: the fleet
	// total must equal the plain sum of the per-process values.
	var sum float64
	for _, reg := range regs {
		for _, fam := range reg.Snapshot().Families {
			if fam.Name == "mamdr_ps_dense_pulls_total" {
				for _, se := range fam.Series {
					sum += se.Value
				}
			}
		}
	}
	if sum == 0 {
		t.Fatal("no dense pulls recorded; the equality check is vacuous")
	}
	for _, fam := range agg {
		if fam.Name == "mamdr_ps_dense_pulls_total" {
			if got := fam.Series[0].Value; got != sum {
				t.Fatalf("aggregated dense pulls = %v, want the per-process sum %v", got, sum)
			}
		}
	}
}
