// Package cluster partitions the parameter server across N shards — the
// paper's Section IV-E deployment, where "the model is stored on
// parameter servers" (plural; 40 in the industrial setup) rather than
// one machine. A ps.Plan assigns every embedding row (rendezvous
// hashing on (tensor, row)) and every dense tensor (element-balanced)
// to a shard, each shard is an ordinary ps.Server over its slice, and a
// Router in front of them implements the ps.Store interface — so
// Worker, Trainer, checkpointing, and chaos tooling run unchanged
// against 1 or N shards, in-process or across N sockets.
//
// The router fans every call out scatter-gather with bounded
// parallelism: pulls split per shard and merge into one reply, pushes
// split the delta per shard before sending. Each shard endpoint keeps
// its own retry/backoff/idempotent-push-token machinery (ps.Client), so
// one slow or faulty shard degrades — and ultimately fails over or
// fails loudly — without corrupting the others. With replicated shards
// (R endpoints per partition) writes broadcast to every live replica
// and reads fail over past condemned ones, so training survives a
// shard-server death and, in deterministic SyncPush mode, still matches
// the clean run bit for bit.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mamdr/internal/paramvec"
	"mamdr/internal/ps"
	"mamdr/internal/trace"
)

// Options configures a Router.
type Options struct {
	// Parallelism bounds how many shard calls one logical operation
	// issues concurrently (0 = one goroutine per shard).
	Parallelism int
	// Metrics, when non-nil, records per-shard latency/volume/failover
	// series and the plan's imbalance gauge.
	Metrics *Metrics
	// Tracer, when non-nil, receives shard_failover flight-recorder
	// triggers; fan-out spans parent to the caller's context regardless.
	Tracer *trace.Tracer
}

// Router fronts a partitioned parameter-server cluster. It implements
// ps.Store (and ps.CheckpointStore), so everything written against a
// single parameter server drives a sharded one unchanged.
type Router struct {
	plan   ps.Plan
	shards [][]ps.Store // [shard][replica]
	dead   [][]atomic.Bool

	sem     chan struct{}
	metrics *Metrics
	tracer  *trace.Tracer

	// denseShards lists shards holding at least one dense tensor — the
	// fan-out set of PullDense.
	denseShards []int

	// counters tallies logical (router-level) traffic with the same
	// semantics as a single ps.Server, so sharded and unsharded runs
	// report comparable numbers.
	counters struct {
		densePulls, densePushes, rowPulls, rowPushes, floats int64
	}
}

var _ ps.Store = (*Router)(nil)
var _ ps.CheckpointStore = (*Router)(nil)

// New builds a Router over the plan's shard endpoints: shards[sh] lists
// the replicas serving partition sh (index 0 is the preferred primary).
// Every endpoint's layout is verified shape-for-shape against the
// plan's sub-layout — a shard serving the wrong slice would silently
// desync training, so a mismatch is an error here, not later.
func New(plan ps.Plan, shards [][]ps.Store, opts Options) (*Router, error) {
	if len(shards) != plan.NumShards {
		return nil, fmt.Errorf("cluster: plan has %d shards, got %d endpoint groups", plan.NumShards, len(shards))
	}
	r := &Router{
		plan:    plan,
		shards:  shards,
		dead:    make([][]atomic.Bool, len(shards)),
		metrics: opts.Metrics,
		tracer:  opts.Tracer,
	}
	for sh, reps := range shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no endpoints", sh)
		}
		r.dead[sh] = make([]atomic.Bool, len(reps))
		want := plan.ShardLayout(sh)
		for rep, ep := range reps {
			if err := sameLayout(want, ep.Layout()); err != nil {
				return nil, fmt.Errorf("cluster: shard %d replica %d serves the wrong slice: %w", sh, rep, err)
			}
		}
	}
	for sh := 0; sh < plan.NumShards; sh++ {
		for _, t := range plan.ShardTensors(sh) {
			if !plan.Layout.Embedding[t] {
				r.denseShards = append(r.denseShards, sh)
				break
			}
		}
	}
	if opts.Parallelism > 0 {
		r.sem = make(chan struct{}, opts.Parallelism)
	}
	opts.Metrics.BindPlan(plan)
	return r, nil
}

// sameLayout compares two layouts shape for shape.
func sameLayout(want, got ps.Layout) error {
	if want.NumTensors() != got.NumTensors() {
		return fmt.Errorf("%d tensors, want %d", got.NumTensors(), want.NumTensors())
	}
	for t := 0; t < want.NumTensors(); t++ {
		if want.Rows[t] != got.Rows[t] || want.Cols[t] != got.Cols[t] ||
			want.Embedding[t] != got.Embedding[t] || want.Field[t] != got.Field[t] {
			return fmt.Errorf("tensor %d is %dx%d (embedding=%v field=%d), want %dx%d (embedding=%v field=%d)",
				t, got.Rows[t], got.Cols[t], got.Embedding[t], got.Field[t],
				want.Rows[t], want.Cols[t], want.Embedding[t], want.Field[t])
		}
	}
	return nil
}

// Plan returns the partition plan the router fans out over.
func (r *Router) Plan() ps.Plan { return r.plan }

// Layout implements ps.Store: workers see the global layout; the
// partitioning is invisible to them.
func (r *Router) Layout() ps.Layout { return r.plan.Layout }

// acquire takes a fan-out slot when parallelism is bounded.
func (r *Router) acquire() func() {
	if r.sem == nil {
		return func() {}
	}
	r.sem <- struct{}{}
	return func() { <-r.sem }
}

// attempt runs fn against one endpoint, converting a panic — the
// ps.Store failure mode (a ps.Client that exhausted its retries, an
// injected in-process fault) — into an error the failover logic can
// act on.
func attempt(fn func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("%v", p)
			}
		}
	}()
	fn()
	return nil
}

// condemn marks one replica dead after a failed call. A condemned
// replica serves no further reads or writes: a replica that missed a
// write must never serve a read, and one that failed a read is assumed
// gone for good (the endpoint's own retry budget was already spent).
func (r *Router) condemn(sh, rep int, op string, err error) {
	if r.dead[sh][rep].Swap(true) {
		return
	}
	r.metrics.observeFailure(sh)
	r.tracer.Flight().Trigger("shard_failover", map[string]any{
		"shard":   sh,
		"replica": rep,
		"op":      op,
		"error":   err.Error(),
	})
}

// read runs fn against shard sh's replicas in order, failing over past
// dead or failing ones. It returns the error only when every replica is
// gone — the caller turns that into a loud panic.
func (r *Router) read(sh int, op string, fn func(ps.Store)) error {
	var lastErr error
	for rep := range r.shards[sh] {
		if r.dead[sh][rep].Load() {
			continue
		}
		if rep > 0 {
			r.metrics.observeFailover(sh)
		}
		err := attempt(func() { fn(r.shards[sh][rep]) })
		if err == nil {
			return nil
		}
		lastErr = err
		r.condemn(sh, rep, op, err)
	}
	if lastErr == nil {
		lastErr = errors.New("all replicas already condemned")
	}
	return fmt.Errorf("cluster: shard %d: %s failed on every replica: %w", sh, op, lastErr)
}

// write broadcasts fn to every live replica of shard sh (in replica
// order, so replicated state stays deterministic). Replicas that fail
// are condemned; the write succeeds as long as one replica took it.
func (r *Router) write(sh int, op string, fn func(ps.Store)) error {
	applied := 0
	var lastErr error
	for rep := range r.shards[sh] {
		if r.dead[sh][rep].Load() {
			continue
		}
		if err := attempt(func() { fn(r.shards[sh][rep]) }); err != nil {
			lastErr = err
			r.condemn(sh, rep, op, err)
			continue
		}
		applied++
	}
	if applied == 0 {
		if lastErr == nil {
			lastErr = errors.New("all replicas already condemned")
		}
		return fmt.Errorf("cluster: shard %d: %s failed on every replica: %w", sh, op, lastErr)
	}
	return nil
}

// fanOut runs fn(sh) for every listed shard with bounded parallelism
// and panics — the ps.Store failure mode — if any shard ran out of
// replicas. Losing a whole shard means a slice of the model is gone;
// continuing would silently train on a partial parameter space.
func (r *Router) fanOut(shards []int, op string, fn func(sh int) error) {
	if len(shards) == 1 { // common fast path: no goroutine needed
		if err := fn(shards[0]); err != nil {
			panic(err)
		}
		return
	}
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i, sh int) {
			defer wg.Done()
			release := r.acquire()
			defer release()
			errs[i] = fn(sh)
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	_ = op
}

// PullDense implements ps.Store: dense tensors are pulled from their
// owning shards concurrently and merged into one reply keyed by global
// tensor index.
func (r *Router) PullDense(ctx context.Context) map[int][]float64 {
	ctx, sp := trace.Start(ctx, "cluster.pull_dense", trace.A("shards", len(r.denseShards)))
	defer sp.End()

	parts := make([]map[int][]float64, r.plan.NumShards)
	r.fanOut(r.denseShards, "PullDense", func(sh int) error {
		cctx, csp := trace.Start(ctx, "cluster.shard_call",
			trace.A("shard", sh), trace.A("op", "pull_dense"))
		start := time.Now()
		var local map[int][]float64
		if err := r.read(sh, "PullDense", func(s ps.Store) { local = s.PullDense(cctx) }); err != nil {
			csp.EndWith(trace.A("error", err.Error()))
			return err
		}
		parts[sh] = local
		floats := 0
		for _, v := range local {
			floats += len(v)
		}
		r.metrics.observeShardOp(sh, "pull_dense", time.Since(start).Seconds(), floats)
		csp.EndWith(trace.A("floats", floats))
		return nil
	})

	out := map[int][]float64{}
	floats := 0
	for _, sh := range r.denseShards {
		tensors := r.plan.ShardTensors(sh)
		for local, vals := range parts[sh] {
			out[tensors[local]] = vals
			floats += len(vals)
		}
	}
	atomic.AddInt64(&r.counters.densePulls, 1)
	atomic.AddInt64(&r.counters.floats, int64(floats))
	sp.SetAttr("floats", floats)
	return out
}

// PullRows implements ps.Store: the requested rows are grouped by
// owning shard, pulled concurrently with shard-local row indices, and
// reassembled in the caller's order.
func (r *Router) PullRows(ctx context.Context, tensor int, rows []int) [][]float64 {
	if !r.plan.Layout.Embedding[tensor] {
		panic(fmt.Sprintf("cluster: PullRows on dense tensor %d", tensor))
	}
	ctx, sp := trace.Start(ctx, "cluster.pull_rows",
		trace.A("tensor", tensor), trace.A("rows", len(rows)))
	defer sp.End()

	// Group request positions by owning shard.
	pos := make([][]int, r.plan.NumShards)   // positions in the caller's request
	local := make([][]int, r.plan.NumShards) // shard-local row indices
	var involved []int
	for i, row := range rows {
		sh := r.plan.ShardOfRow(tensor, row)
		if pos[sh] == nil {
			involved = append(involved, sh)
		}
		pos[sh] = append(pos[sh], i)
		local[sh] = append(local[sh], r.plan.LocalRow(tensor, row))
	}

	out := make([][]float64, len(rows))
	cols := r.plan.Layout.Cols[tensor]
	r.fanOut(involved, "PullRows", func(sh int) error {
		lt := r.plan.LocalTensor(sh, tensor)
		cctx, csp := trace.Start(ctx, "cluster.shard_call",
			trace.A("shard", sh), trace.A("op", "pull_rows"), trace.A("rows", len(local[sh])))
		start := time.Now()
		var vals [][]float64
		if err := r.read(sh, "PullRows", func(s ps.Store) { vals = s.PullRows(cctx, lt, local[sh]) }); err != nil {
			csp.EndWith(trace.A("error", err.Error()))
			return err
		}
		for j, p := range pos[sh] {
			out[p] = vals[j]
		}
		r.metrics.observeShardOp(sh, "pull_rows", time.Since(start).Seconds(), len(vals)*cols)
		csp.End()
		return nil
	})

	atomic.AddInt64(&r.counters.rowPulls, int64(len(rows)))
	atomic.AddInt64(&r.counters.floats, int64(len(rows)*cols))
	return out
}

// PushDelta implements ps.Store: the delta is split per shard — dense
// deltas to the owning shard, row deltas regrouped by row owner with
// shard-local indices — and the parts are pushed concurrently, each
// broadcast to the shard's live replicas. Every part carries the
// worker's (WorkerID, Seq) idempotency token, so a retried or
// replica-broadcast push is still applied exactly once per server.
func (r *Router) PushDelta(ctx context.Context, d ps.Delta) {
	ctx, sp := trace.Start(ctx, "cluster.push_delta",
		trace.A("dense_tensors", len(d.Dense)), trace.A("row_tensors", len(d.Rows)))
	defer sp.End()

	parts := make([]ps.Delta, r.plan.NumShards)
	floatsBy := make([]int, r.plan.NumShards)
	var involved []int
	touch := func(sh int) *ps.Delta {
		p := &parts[sh]
		if p.Dense == nil && p.Rows == nil {
			involved = append(involved, sh)
		}
		return p
	}

	var denseFloats, rowCount, rowFloats int
	// Iterate in ascending tensor order so each shard sees its slice of
	// the delta in the same order every run.
	for t := 0; t < r.plan.Layout.NumTensors(); t++ {
		if delta, ok := d.Dense[t]; ok {
			sh := r.plan.ShardOfTensor(t)
			p := touch(sh)
			if p.Dense == nil {
				p.Dense = map[int][]float64{}
			}
			p.Dense[r.plan.LocalTensor(sh, t)] = delta
			denseFloats += len(delta)
			floatsBy[sh] += len(delta)
		}
		rows, ok := d.Rows[t]
		if !ok {
			continue
		}
		cols := r.plan.Layout.Cols[t]
		for i, row := range rows {
			sh := r.plan.ShardOfRow(t, row)
			p := touch(sh)
			if p.Rows == nil {
				p.Rows = map[int][]int{}
				p.RowDeltas = map[int][][]float64{}
			}
			lt := r.plan.LocalTensor(sh, t)
			p.Rows[lt] = append(p.Rows[lt], r.plan.LocalRow(t, row))
			p.RowDeltas[lt] = append(p.RowDeltas[lt], d.RowDeltas[t][i])
			floatsBy[sh] += cols
		}
		rowCount += len(rows)
		rowFloats += len(rows) * cols
	}

	r.fanOut(involved, "PushDelta", func(sh int) error {
		part := parts[sh]
		part.WorkerID, part.Seq = d.WorkerID, d.Seq
		cctx, csp := trace.Start(ctx, "cluster.shard_call",
			trace.A("shard", sh), trace.A("op", "push_delta"))
		start := time.Now()
		if err := r.write(sh, "PushDelta", func(s ps.Store) { s.PushDelta(cctx, part) }); err != nil {
			csp.EndWith(trace.A("error", err.Error()))
			return err
		}
		r.metrics.observeShardOp(sh, "push_delta", time.Since(start).Seconds(), floatsBy[sh])
		csp.End()
		return nil
	})

	if len(d.Dense) > 0 {
		atomic.AddInt64(&r.counters.densePushes, 1)
	}
	atomic.AddInt64(&r.counters.rowPushes, int64(rowCount))
	atomic.AddInt64(&r.counters.floats, int64(denseFloats+rowFloats))
}

// Counters implements ps.Store. The tallies are logical (router-level):
// one dense pull per PullDense regardless of how many shards it
// scattered to, so sharded and unsharded runs report the same
// synchronization-overhead numbers.
func (r *Router) Counters() ps.Counters {
	return ps.Counters{
		DensePulls:  atomic.LoadInt64(&r.counters.densePulls),
		DensePushes: atomic.LoadInt64(&r.counters.densePushes),
		RowPulls:    atomic.LoadInt64(&r.counters.rowPulls),
		RowPushes:   atomic.LoadInt64(&r.counters.rowPushes),
		FloatsMoved: atomic.LoadInt64(&r.counters.floats),
	}
}

// Snapshot implements ps.Snapshotter: it reassembles the full global
// parameter state from every shard's slice. The reads go through the
// shard endpoints (so it works over RPC and fails over past dead
// replicas) but bypass the router's logical counters — snapshotting for
// evaluation must not skew the synchronization-overhead numbers, just
// as ps.Server.Snapshot does not.
func (r *Router) Snapshot() paramvec.Vector {
	layout := r.plan.Layout
	out := make(paramvec.Vector, layout.NumTensors())
	for t := range out {
		out[t] = make([]float64, layout.Rows[t]*layout.Cols[t])
	}
	all := make([]int, r.plan.NumShards)
	for sh := range all {
		all[sh] = sh
	}
	ctx := context.Background()
	r.fanOut(all, "Snapshot", func(sh int) error {
		tensors := r.plan.ShardTensors(sh)
		var dense map[int][]float64
		if err := r.read(sh, "Snapshot", func(s ps.Store) { dense = s.PullDense(ctx) }); err != nil {
			return err
		}
		for local, vals := range dense {
			copy(out[tensors[local]], vals)
		}
		for local, t := range tensors {
			if !layout.Embedding[t] {
				continue
			}
			globalRows := r.plan.ShardRows(sh, t)
			localRows := make([]int, len(globalRows))
			for i := range localRows {
				localRows[i] = i
			}
			var vals [][]float64
			lt := local
			if err := r.read(sh, "Snapshot", func(s ps.Store) { vals = s.PullRows(ctx, lt, localRows) }); err != nil {
				return err
			}
			cols := layout.Cols[t]
			for i, gr := range globalRows {
				copy(out[t][gr*cols:(gr+1)*cols], vals[i])
			}
		}
		return nil
	})
	return out
}

// TrySnapshot is Snapshot with the ps.Store failure mode — a panic when
// a whole shard is gone — converted to an error. Training wants the
// panic (continuing on a partial parameter space would silently corrupt
// the run), but the serving path wants to degrade: a serve instance
// whose upstream cluster died keeps answering from its last good
// snapshot, and TrySnapshot is how it probes for a fresh one without
// risking the process.
func (r *Router) TrySnapshot() (v paramvec.Vector, err error) {
	if perr := attempt(func() { v = r.Snapshot() }); perr != nil {
		return nil, perr
	}
	return v, nil
}

// TryPing pings every replica of every shard through the endpoints that
// support it, converting panics to errors. Unlike the data-path reads it
// never condemns a replica — a health probe must be side-effect-free, so
// a shard that flaps and recovers keeps serving. The first failure names
// the shard and replica.
func (r *Router) TryPing(ctx context.Context) error {
	for sh, reps := range r.shards {
		for rep, ep := range reps {
			p, ok := ep.(interface{ Ping(context.Context) error })
			if !ok {
				continue
			}
			var err error
			if perr := attempt(func() { err = p.Ping(ctx) }); perr != nil {
				err = perr
			}
			if err != nil {
				return fmt.Errorf("cluster: shard %d replica %d: ping: %w", sh, rep, err)
			}
		}
	}
	return nil
}

// Close closes every endpoint that supports closing (ps.Clients do;
// in-process ps.Servers do not). Used when a dial+snapshot attempt is
// abandoned and retried against a fresh router.
func (r *Router) Close() error {
	var first error
	for _, reps := range r.shards {
		for _, ep := range reps {
			if c, ok := ep.(interface{ Close() error }); ok {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	return first
}

// LiveReplicas reports how many replicas of shard sh still serve.
func (r *Router) LiveReplicas(sh int) int {
	n := 0
	for rep := range r.shards[sh] {
		if !r.dead[sh][rep].Load() {
			n++
		}
	}
	return n
}

// SaveCheckpoint implements ps.CheckpointStore: every live replica of
// every shard persists its slice to its own configured path (see
// ps.ShardCheckpointPath). A replica that cannot checkpoint fails the
// call — a partial cluster checkpoint must never look complete.
func (r *Router) SaveCheckpoint(epoch int) error {
	for sh, reps := range r.shards {
		for rep, ep := range reps {
			if r.dead[sh][rep].Load() {
				continue
			}
			cs, ok := ep.(ps.CheckpointStore)
			if !ok {
				return fmt.Errorf("cluster: shard %d replica %d cannot checkpoint", sh, rep)
			}
			var err error
			if perr := attempt(func() { err = cs.SaveCheckpoint(epoch) }); perr != nil {
				err = perr
			}
			if err != nil {
				return fmt.Errorf("cluster: checkpoint shard %d replica %d: %w", sh, rep, err)
			}
		}
	}
	return nil
}

// LoadCheckpoint implements ps.CheckpointStore: every live replica
// restores its slice, and the per-shard epoch cursors must agree — a
// cluster restored from mixed epochs would silently train on torn
// state. All shards reporting no checkpoint yields (-1, nil).
func (r *Router) LoadCheckpoint() (int, error) {
	epoch, first := 0, true
	for sh, reps := range r.shards {
		for rep, ep := range reps {
			if r.dead[sh][rep].Load() {
				continue
			}
			cs, ok := ep.(ps.CheckpointStore)
			if !ok {
				return 0, fmt.Errorf("cluster: shard %d replica %d cannot checkpoint", sh, rep)
			}
			var e int
			var err error
			if perr := attempt(func() { e, err = cs.LoadCheckpoint() }); perr != nil {
				err = perr
			}
			if err != nil {
				return 0, fmt.Errorf("cluster: restore shard %d replica %d: %w", sh, rep, err)
			}
			if first {
				epoch, first = e, false
			} else if e != epoch {
				return 0, fmt.Errorf("cluster: torn checkpoint: shard %d replica %d is at epoch %d, cluster at %d",
					sh, rep, e, epoch)
			}
		}
	}
	if first {
		return -1, nil
	}
	return epoch, nil
}
