package cluster

import (
	"context"
	"fmt"
	"net"

	"mamdr/internal/autograd"
	"mamdr/internal/paramvec"
	"mamdr/internal/ps"
	"mamdr/internal/trace"
)

// ShardOptions configures how Shards builds the per-shard ps.Servers.
type ShardOptions struct {
	// Replicas is how many identical servers host each shard (>= 1).
	// With R > 1 the router broadcasts writes to all replicas and fails
	// reads over, so losing R-1 servers of a shard is survivable.
	Replicas int
	// Stripes is each server's internal lock-striping count (ps.NewServer's
	// numShards argument — intra-server concurrency, distinct from the
	// cluster's partition count).
	Stripes int
	// OuterOpt and OuterLR configure each shard's outer optimizer (Eq. 3).
	OuterOpt string
	OuterLR  float64
	// CheckpointPath, when set, is the cluster's base checkpoint path;
	// shard sh replica r persists to ShardCheckpointPath(base, sh, N)
	// (plus a ".r<r>" suffix for backup replicas).
	CheckpointPath string
	// Tracer, when non-nil, is attached to every shard server so
	// server-side spans join the workers' traces.
	Tracer *trace.Tracer
	// Metrics, when non-nil, is attached to every shard server so PS
	// traffic lands in one registry — the registry the shard's RPC
	// MetricsSnapshot method exports for fleet federation.
	Metrics *ps.Metrics
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.Stripes < 1 {
		o.Stripes = 1
	}
	// Mirror ps.Options.WithDefaults so a shard server configured with
	// zero values applies the same outer update a default single server
	// would — a silently different outer learning rate on the serve side
	// would break bit-identity with in-process runs.
	if o.OuterOpt == "" {
		o.OuterOpt = "sgd"
	}
	if o.OuterLR == 0 {
		o.OuterLR = 0.5
	}
	return o
}

// ReplicaCheckpointPath derives the checkpoint path of replica rep of
// shard sh: the primary uses the plain per-shard path, backups append a
// replica suffix so a replicated cluster on one filesystem never has
// two servers clobbering the same file.
func ReplicaCheckpointPath(base string, sh, of, rep int) string {
	p := ps.ShardCheckpointPath(base, sh, of)
	if rep > 0 {
		p = fmt.Sprintf("%s.r%d", p, rep)
	}
	return p
}

// Shards builds the cluster's shard servers: for each of the plan's
// partitions, Replicas identical ps.Servers seeded with that partition's
// slice of params. Because every replica starts from the same slice and
// the router broadcasts writes in replica order, replicas stay
// bit-identical until one dies.
func Shards(params []*autograd.Tensor, plan ps.Plan, o ShardOptions) [][]*ps.Server {
	o = o.withDefaults()
	out := make([][]*ps.Server, plan.NumShards)
	for sh := 0; sh < plan.NumShards; sh++ {
		tables := plan.ShardTables(sh)
		for rep := 0; rep < o.Replicas; rep++ {
			srv := ps.NewServer(plan.ShardParams(params, sh), tables, o.Stripes, o.OuterOpt, o.OuterLR)
			if o.CheckpointPath != "" {
				srv.SetCheckpointPath(ReplicaCheckpointPath(o.CheckpointPath, sh, plan.NumShards, rep))
			}
			srv.SetTracer(o.Tracer)
			srv.SetMetrics(o.Metrics)
			out[sh] = append(out[sh], srv)
		}
	}
	return out
}

// Local is a fully in-process sharded deployment: the plan, the shard
// servers, and a router over them. It is what tests, benchmarks, and
// single-binary training runs use.
type Local struct {
	Plan    ps.Plan
	Servers [][]*ps.Server
	Router  *Router
}

// NewLocal partitions params per the plan, builds the shard servers,
// and fronts them with a router.
func NewLocal(params []*autograd.Tensor, plan ps.Plan, so ShardOptions, ro Options) *Local {
	servers := Shards(params, plan, so)
	stores := make([][]ps.Store, len(servers))
	for sh, reps := range servers {
		for _, srv := range reps {
			stores[sh] = append(stores[sh], srv)
		}
	}
	router, err := New(plan, stores, ro)
	if err != nil {
		// The endpoints were just built from the same plan; a mismatch
		// here is a bug, not an environmental failure.
		panic(err)
	}
	return &Local{Plan: plan, Servers: servers, Router: router}
}

// Snapshot reassembles the full parameter vector from the shards — the
// cluster analogue of ps.Server.Snapshot, used to evaluate the trained
// model.
func (l *Local) Snapshot() paramvec.Vector { return l.Router.Snapshot() }

// ServeTCP exposes every shard server on its own loopback TCP listener
// and returns the per-shard replica addresses plus a close function
// that stops all listeners. Each server runs ps.Serve in its own
// goroutine — the exact transport a multi-machine deployment uses.
func ServeTCP(servers [][]*ps.Server) ([][]string, func(), error) {
	addrs := make([][]string, len(servers))
	var listeners []net.Listener
	closeAll := func() {
		for _, lis := range listeners {
			lis.Close()
		}
	}
	for sh, reps := range servers {
		for _, srv := range reps {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				closeAll()
				return nil, nil, fmt.Errorf("cluster: listen for shard %d: %w", sh, err)
			}
			listeners = append(listeners, lis)
			addrs[sh] = append(addrs[sh], lis.Addr().String())
			go ps.Serve(srv, lis)
		}
	}
	return addrs, closeAll, nil
}

// Dial connects to an already-serving shard cluster: addrs[sh] lists
// the replica addresses of shard sh, in the same order everywhere (the
// router's replica protocol relies on a consistent ordering across
// workers). cfg, when non-nil, configures each ps.Client before its
// first call — the hook for attaching backoff policies, fault
// injectors, metrics, and tracers. New verifies every endpoint's layout
// against the plan, so dialing the wrong cluster fails here.
func Dial(plan ps.Plan, addrs [][]string, cfg func(sh, rep int, cl *ps.Client), opts Options) (*Router, error) {
	stores := make([][]ps.Store, len(addrs))
	var clients []*ps.Client
	for sh, reps := range addrs {
		for rep, addr := range reps {
			cl, err := ps.Dial(addr)
			if err != nil {
				for _, c := range clients {
					c.Close()
				}
				return nil, fmt.Errorf("cluster: shard %d replica %d: %w", sh, rep, err)
			}
			if cfg != nil {
				cfg(sh, rep, cl)
			}
			clients = append(clients, cl)
			stores[sh] = append(stores[sh], cl)
		}
	}
	r, err := New(plan, stores, opts)
	if err != nil {
		for _, c := range clients {
			c.Close()
		}
		return nil, err
	}
	return r, nil
}

// DialSnapshot dials the cluster and pulls a full parameter snapshot,
// retrying the whole dial+snapshot unit under a bounded seeded backoff.
// A serve instance typically races the cluster it fronts at startup —
// the shard servers may still be binding their listeners — so a single
// attempt turns an ordering accident into a dead fleet. Each retry
// starts from a fresh router: router condemnation is deliberately
// permanent (a replica that missed a write must never serve a read), so
// a router that watched the cluster come up half-alive must not be kept.
// The abandoned attempt's clients are closed before the backoff sleep.
// On success the caller owns both the router and the snapshot.
func DialSnapshot(ctx context.Context, plan ps.Plan, addrs [][]string, cfg func(sh, rep int, cl *ps.Client), opts Options, bo ps.Backoff) (*Router, paramvec.Vector, error) {
	bo = bo.WithDefaults()
	var lastErr error
	for att := 1; att <= bo.Attempts; att++ {
		if att > 1 {
			if err := bo.Wait(ctx, att-1); err != nil {
				return nil, nil, fmt.Errorf("cluster: dial+snapshot aborted after %d attempts: %w (last error: %v)", att-1, err, lastErr)
			}
		}
		r, err := Dial(plan, addrs, cfg, opts)
		if err != nil {
			lastErr = err
			continue
		}
		v, err := r.TrySnapshot()
		if err != nil {
			lastErr = err
			r.Close()
			continue
		}
		return r, v, nil
	}
	return nil, nil, fmt.Errorf("cluster: dial+snapshot failed after %d attempts: %w", bo.Attempts, lastErr)
}
